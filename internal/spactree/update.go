package spactree

import (
	"sort"

	"repro/internal/parallel"
)

// upperBound returns the first index in sorted batch with entry > e.
func upperBound(batch []Entry, e Entry) int {
	return sort.Search(len(batch), func(i int) bool { return cmpEntry(batch[i], e) > 0 })
}

// lowerBound returns the first index in sorted batch with entry >= e.
func lowerBound(batch []Entry, e Entry) int {
	return sort.Search(len(batch), func(i int) bool { return cmpEntry(batch[i], e) >= 0 })
}

// insertSorted is InsertSorted (Alg. 4): route the sorted batch down by
// pivot codes, absorb or rebuild at leaves, Join on the way back up.
func (t *Tree) insertSorted(nd *node, batch []Entry) *node {
	if len(batch) == 0 {
		return nd
	}
	if nd == nil {
		return t.buildSortedEnts(batch)
	}
	phi := t.opts.LeafWrap
	if nd.isLeaf() {
		total := nd.size + len(batch)
		if total <= phi {
			// Lines 8-11: absorb. SPaC mode appends and marks the leaf
			// unsorted — the whole point of the partial-order relaxation;
			// CPAM mode pays for a sorted merge on every touch.
			if t.mode == TotalOrder {
				merged := mergeSorted(nd.ents, batch)
				return t.newLeaf(merged, true)
			}
			bbox := nd.bbox
			for _, e := range batch {
				bbox = bbox.Extend(e.P, t.opts.Dims)
			}
			nd.ents = append(nd.ents, batch...)
			nd.size = len(nd.ents)
			nd.bbox = bbox
			nd.sorted = false
			return nd
		}
		if total <= 4*phi {
			// §C heuristic, small side: localized rebuild.
			var all []Entry
			if t.mode == TotalOrder {
				all = mergeSorted(nd.ents, batch)
			} else {
				all = make([]Entry, 0, total)
				all = append(all, nd.ents...)
				all = append(all, batch...)
				sortEntries(all)
			}
			return t.buildSortedEnts(all)
		}
		// §C heuristic, large side: expose the leaf and distribute the
		// batch across its halves instead of merging a huge run.
		l, k, r := t.expose(nd)
		i := upperBound(batch, k)
		var nl, nr *node
		parallel.DoIf(len(batch) >= seqCutoff,
			func() { nl = t.insertSorted(l, batch[:i]) },
			func() { nr = t.insertSorted(r, batch[i:]) })
		return t.join(nl, k, nr)
	}
	// Lines 13-19: binary-search the pivot in the batch, recurse in
	// parallel, Join rebalances.
	i := upperBound(batch, nd.pivot)
	var l, r *node
	parallel.DoIf(len(batch) >= seqCutoff,
		func() { l = t.insertSorted(nd.left, batch[:i]) },
		func() { r = t.insertSorted(nd.right, batch[i:]) })
	return t.joinInto(nd, l, r)
}

// joinInto is Join(l, pivot, r) with an in-place fast path: when the
// children stayed balanced and no leaf-wrap action applies, the existing
// interior node is updated rather than reallocated. Only the rebalancing
// path pays for fresh nodes — the joins are semantically identical, the
// tree is simply not persistent (the paper's C++ trees reuse nodes the
// same way unless compressed sharing is on).
func (t *Tree) joinInto(nd *node, l, r *node) *node {
	if t.balancedNodes(l, r) {
		if n := sizeOf(l) + sizeOf(r) + 1; n > 2*t.opts.LeafWrap {
			nd.left, nd.right = l, r
			nd.size = n
			nd.bbox = t.interiorBBox(l, nd.pivot, r)
			return nd
		}
	}
	return t.join(l, nd.pivot, r)
}

// mergeSorted merges two entry slices sorted by cmpEntry.
func mergeSorted(a, b []Entry) []Entry {
	out := make([]Entry, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if cmpEntry(a[i], b[j]) <= 0 {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// deleteSorted removes one stored occurrence per batch entry (§4.2: "when
// it reaches a leaf, it removes the points there, marks the leaf as
// unsorted if necessary, and updates the bounding box"; rebalancing via
// Join/Join2 as in insertion).
func (t *Tree) deleteSorted(nd *node, batch []Entry) *node {
	if nd == nil || len(batch) == 0 {
		return nd
	}
	if nd.isLeaf() {
		return t.deleteFromLeaf(nd, batch)
	}
	lo := lowerBound(batch, nd.pivot)
	hi := upperBound(batch, nd.pivot)
	if lo == hi {
		// Pivot not targeted: plain split-recurse-join.
		var l, r *node
		parallel.DoIf(len(batch) >= seqCutoff,
			func() { l = t.deleteSorted(nd.left, batch[:lo]) },
			func() { r = t.deleteSorted(nd.right, batch[hi:]) })
		return t.joinInto(nd, l, r)
	}
	// The batch deletes copies of the pivot entry itself. Copies of an
	// identical entry may sit on both sides of the pivot, so plain
	// routing cannot find them all: extract the whole run, then put back
	// whatever the batch did not consume.
	req := hi - lo
	var l, r *node
	parallel.DoIf(len(batch) >= seqCutoff,
		func() { l = t.deleteSorted(nd.left, batch[:lo]) },
		func() { r = t.deleteSorted(nd.right, batch[hi:]) })
	ll, lg, cl := t.splitRun(l, nd.pivot)
	rl, rg, cr := t.splitRun(r, nd.pivot)
	avail := cl + cr + 1 // + the pivot itself
	leftover := avail - req
	if leftover < 0 {
		leftover = 0
	}
	res := t.join2(t.join2(ll, lg), t.join2(rl, rg))
	if leftover > 0 {
		run := make([]Entry, leftover)
		for i := range run {
			run[i] = nd.pivot
		}
		res = t.insertSorted(res, run)
	}
	return res
}

// deleteFromLeaf removes multiset matches from a leaf. In PartialOrder
// mode the removal is an in-place swap-delete — the leaf just goes
// unsorted, exactly the freedom §4.2 grants deletions ("removes the
// points there, marks the leaf as unsorted if necessary"). TotalOrder
// (CPAM) mode must keep the leaf sorted, so it pays for an order-
// preserving compaction.
func (t *Tree) deleteFromLeaf(nd *node, batch []Entry) *node {
	if t.mode == PartialOrder {
		ents := nd.ents
		removed := false
		for _, b := range batch {
			for i := range ents {
				if ents[i].Code == b.Code && ents[i].P == b.P {
					ents[i] = ents[len(ents)-1]
					ents = ents[:len(ents)-1]
					removed = true
					break
				}
			}
		}
		if !removed {
			return nd
		}
		if len(ents) == 0 {
			return nil
		}
		nd.ents = ents
		nd.size = len(ents)
		nd.sorted = false
		nd.bbox = entsBBox(ents, t.opts.Dims)
		return nd
	}
	used := make([]bool, len(batch))
	kept := make([]Entry, 0, len(nd.ents))
	for _, e := range nd.ents {
		matched := false
		lo := lowerBound(batch, e)
		for j := lo; j < len(batch) && cmpEntry(batch[j], e) == 0; j++ {
			if !used[j] {
				used[j] = true
				matched = true
				break
			}
		}
		if !matched {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	if len(kept) == len(nd.ents) {
		return nd
	}
	return t.newLeaf(kept, nd.sorted)
}

// LeafStats reports how many leaves exist and how many are currently
// marked unsorted — the observable footprint of the partial-order
// relaxation (used by tests and the ablation benches).
func (t *Tree) LeafStats() (leaves, unsorted int) {
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.isLeaf() {
			leaves++
			if !nd.sorted {
				unsorted++
			}
			return
		}
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return
}

// Height returns the tree height (leaf = 1).
func (t *Tree) Height() int { return heightOf(t.root) }

func heightOf(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.isLeaf() {
		return 1
	}
	l, r := heightOf(nd.left), heightOf(nd.right)
	if r > l {
		l = r
	}
	return l + 1
}
