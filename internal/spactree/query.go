package spactree

import (
	"repro/internal/geom"
)

// KNN implements core.Index: depth-first search over bounding boxes,
// nearer child first. Interior pivots are stored entries (Alg. 3 line 30),
// so they are offered to the heap as the search passes them. R-tree boxes
// overlap, which is why this is slower than the space-partitioning trees
// (§5.1.3) — the price of the fastest updates.
func (t *Tree) KNN(q geom.Point, k int, dst []geom.Point) []geom.Point {
	if t.root == nil || k <= 0 {
		return dst
	}
	h := geom.GetKNNHeap(k)
	t.knn(t.root, q, h)
	dst = h.Append(dst)
	geom.PutKNNHeap(h)
	return dst
}

func (t *Tree) knn(nd *node, q geom.Point, h *geom.KNNHeap) {
	dims := t.opts.Dims
	if nd.isLeaf() {
		// Leaves are scanned wholesale: in-leaf order is irrelevant to
		// queries, which is the observation behind the SPaC relaxation.
		for _, e := range nd.ents {
			h.Push(e.P, geom.Dist2(e.P, q, dims))
		}
		return
	}
	h.Push(nd.pivot.P, geom.Dist2(nd.pivot.P, q, dims))
	var dl, dr int64 = -1, -1
	if nd.left != nil {
		dl = nd.left.bbox.Dist2(q, dims)
	}
	if nd.right != nil {
		dr = nd.right.bbox.Dist2(q, dims)
	}
	first, second := nd.left, nd.right
	d1, d2 := dl, dr
	if nd.right != nil && (nd.left == nil || dr < dl) {
		first, second = nd.right, nd.left
		d1, d2 = dr, dl
	}
	if first != nil && (!h.Full() || d1 < h.Bound()) {
		t.knn(first, q, h)
	}
	if second != nil && (!h.Full() || d2 < h.Bound()) {
		t.knn(second, q, h)
	}
}

// RangeCount implements core.Index.
func (t *Tree) RangeCount(box geom.Box) int { return t.count(t.root, box) }

func (t *Tree) count(nd *node, box geom.Box) int {
	if nd == nil {
		return 0
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return 0
	}
	if box.ContainsBox(nd.bbox, dims) {
		return nd.size
	}
	if nd.isLeaf() {
		n := 0
		for _, e := range nd.ents {
			if box.Contains(e.P, dims) {
				n++
			}
		}
		return n
	}
	n := t.count(nd.left, box) + t.count(nd.right, box)
	if box.Contains(nd.pivot.P, dims) {
		n++
	}
	return n
}

// RangeList implements core.Index.
func (t *Tree) RangeList(box geom.Box, dst []geom.Point) []geom.Point {
	return t.list(t.root, box, dst)
}

func (t *Tree) list(nd *node, box geom.Box, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	dims := t.opts.Dims
	if !box.Intersects(nd.bbox, dims) {
		return dst
	}
	if box.ContainsBox(nd.bbox, dims) {
		return collectPoints(nd, dst)
	}
	if nd.isLeaf() {
		for _, e := range nd.ents {
			if box.Contains(e.P, dims) {
				dst = append(dst, e.P)
			}
		}
		return dst
	}
	dst = t.list(nd.left, box, dst)
	if box.Contains(nd.pivot.P, dims) {
		dst = append(dst, nd.pivot.P)
	}
	return t.list(nd.right, box, dst)
}

// collectPoints appends every point of a subtree (pivots included).
func collectPoints(nd *node, dst []geom.Point) []geom.Point {
	if nd == nil {
		return dst
	}
	if nd.isLeaf() {
		for _, e := range nd.ents {
			dst = append(dst, e.P)
		}
		return dst
	}
	dst = collectPoints(nd.left, dst)
	dst = append(dst, nd.pivot.P)
	return collectPoints(nd.right, dst)
}
