package spactree

import (
	"slices"

	"repro/internal/geom"
)

// node is a leaf (left == nil) holding up to LeafWrap entries, or an
// interior node holding the pivot entry itself (true BST, Alg. 3 line 30).
// sorted marks whether a leaf's entries are in (code, point) order; interior
// nodes ignore it. In TotalOrder (CPAM) mode every leaf stays sorted; in
// PartialOrder (SPaC) mode leaves go unsorted on append and are re-sorted
// lazily by expose/redistribute (Alg. 4 lines 34, 43).
type node struct {
	size        int // points in subtree (leaf entries + interior pivots)
	bbox        geom.Box
	pivot       Entry
	left, right *node
	ents        []Entry
	sorted      bool
}

func (nd *node) isLeaf() bool { return nd != nil && nd.left == nil }

func sizeOf(nd *node) int {
	if nd == nil {
		return 0
	}
	return nd.size
}

// weight is the BB[α] weight: size + 1 (nil trees weigh 1).
func weight(nd *node) int { return sizeOf(nd) + 1 }

// likeWeights reports whether two subtree weights satisfy BB[α]: each side
// carries at least an α fraction of the total.
func (t *Tree) likeWeights(lw, rw int) bool {
	a := t.opts.Alpha
	tot := float64(lw + rw)
	return float64(lw) >= a*tot && float64(rw) >= a*tot
}

func (t *Tree) balancedNodes(l, r *node) bool {
	return t.likeWeights(weight(l), weight(r))
}

// newLeaf wraps entries (not copied) into a leaf.
func (t *Tree) newLeaf(ents []Entry, isSorted bool) *node {
	return &node{size: len(ents), bbox: entsBBox(ents, t.opts.Dims), ents: ents, sorted: isSorted}
}

// entsBBox computes the tight bounding box of a run of entries.
func entsBBox(ents []Entry, dims int) geom.Box {
	bbox := geom.EmptyBox(dims)
	for _, e := range ents {
		bbox = bbox.Extend(e.P, dims)
	}
	return bbox
}

// interiorBBox combines children boxes with the pivot point.
func (t *Tree) interiorBBox(l *node, k Entry, r *node) geom.Box {
	bbox := geom.EmptyBox(t.opts.Dims).Extend(k.P, t.opts.Dims)
	if l != nil {
		bbox = bbox.Union(l.bbox, t.opts.Dims)
	}
	if r != nil {
		bbox = bbox.Union(r.bbox, t.opts.Dims)
	}
	return bbox
}

// rawNode creates an interior node with no leaf-wrap checks (used by the
// perfectly balanced builder, where sizes are known to be large enough).
func (t *Tree) rawNode(l *node, k Entry, r *node) *node {
	return &node{
		size:  sizeOf(l) + sizeOf(r) + 1,
		bbox:  t.interiorBBox(l, k, r),
		pivot: k,
		left:  l,
		right: r,
	}
}

// mkNode is the Node() smart constructor of Alg. 4 (lines 38-48): it
// restores the leaf-wrap invariant where a join step broke it. Subtrees at
// or below φ collapse into one leaf (line 47); subtrees at or below 2φ
// whose halves went out of balance redistribute into two even leaves
// (line 44, "if necessary" — an already-balanced pair is kept as is, so
// lazily-unsorted leaves are NOT re-sorted on every touch); larger
// subtrees become plain interior nodes.
func (t *Tree) mkNode(l *node, k Entry, r *node) *node {
	phi := t.opts.LeafWrap
	n := sizeOf(l) + sizeOf(r) + 1
	if n <= phi {
		// Flatten into a single leaf (line 47).
		ents := make([]Entry, 0, n)
		ents, srt := collectOrdered(l, ents, true)
		ents = append(ents, k)
		ents, srt2 := collectOrdered(r, ents, srt)
		return t.newLeaf(ents, srt && srt2 && isNonDecreasing(ents))
	}
	if n <= 2*phi && !t.balancedNodes(l, r) {
		// Redistribute into two leaves around a middle pivot (line 44),
		// sorting lazily-unsorted constituents first (line 43).
		ents := make([]Entry, 0, n)
		ents, _ = collectOrdered(l, ents, true)
		ents = append(ents, k)
		ents, _ = collectOrdered(r, ents, true)
		sortEntries(ents)
		m := n / 2
		return t.rawNode(
			t.newLeaf(slices.Clone(ents[:m]), true),
			ents[m],
			t.newLeaf(slices.Clone(ents[m+1:]), true),
		)
	}
	return t.rawNode(l, k, r)
}

// collectOrdered appends the subtree's entries in in-order sequence and
// reports whether the appended run is known to be in sorted order (all
// leaves sorted).
func collectOrdered(nd *node, dst []Entry, sortedSoFar bool) ([]Entry, bool) {
	if nd == nil {
		return dst, sortedSoFar
	}
	if nd.isLeaf() {
		return append(dst, nd.ents...), sortedSoFar && nd.sorted
	}
	dst, s := collectOrdered(nd.left, dst, sortedSoFar)
	dst = append(dst, nd.pivot)
	return collectOrdered(nd.right, dst, s)
}

// isNonDecreasing verifies a short run is actually sorted (flatten
// concatenates runs from different leaves; their boundaries are ordered by
// the BST invariant, so sorted sub-runs imply a sorted whole — this check
// is a cheap belt-and-suspenders for the ≤ φ case).
func isNonDecreasing(ents []Entry) bool {
	for i := 1; i < len(ents); i++ {
		if cmpEntry(ents[i-1], ents[i]) > 0 {
			return false
		}
	}
	return true
}

func sortEntries(ents []Entry) {
	slices.SortFunc(ents, cmpEntry)
}

// expose opens a tree into (left, pivot, right) (Alg. 4 lines 32-37). A
// leaf is split around its middle entry — restoring the in-leaf order
// first if it was relaxed (line 34); this lazy sort is where the SPaC-tree
// pays back its deferred work, on the rare join path instead of on every
// update.
func (t *Tree) expose(nd *node) (*node, Entry, *node) {
	if !nd.isLeaf() {
		return nd.left, nd.pivot, nd.right
	}
	ents := nd.ents
	if !nd.sorted {
		sortEntries(ents)
		nd.sorted = true
	}
	m := len(ents) / 2
	var l, r *node
	if m > 0 {
		l = t.newLeaf(slices.Clone(ents[:m]), true)
	}
	if m+1 < len(ents) {
		r = t.newLeaf(slices.Clone(ents[m+1:]), true)
	}
	return l, ents[m], r
}
