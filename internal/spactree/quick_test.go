package spactree

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sfc"
	"repro/internal/workload"
)

// Property: randomized operation scripts keep every invariant (BST order,
// BB[α] balance, leaf wrap, honest sorted flags) and agree with the
// oracle — across modes, curves, dims and duplicate densities. This is
// the join/rotation machinery's main line of defence.
func TestQuickOpScripts(t *testing.T) {
	f := func(seed int64, total bool, hilbert bool, dense bool) bool {
		side := int64(1 << 16)
		if dense {
			side = 40
		}
		curve := sfc.Morton
		if hilbert {
			curve = sfc.Hilbert
		}
		mode := PartialOrder
		if total {
			mode = TotalOrder
		}
		opts := core.DefaultOptions(2, geom.UniverseBox(2, side))
		opts.LeafWrap = 40
		opts.Alpha = 0.2
		tr := New(curve, mode, opts)
		script := core.OpScript{
			Dims: 2, Side: side, Steps: 12, Seed: seed, MaxBatch: 300,
			Validate: tr.Validate,
		}
		if err := script.Run(tr); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Fatal(err)
	}
}

// Property: splitRun extracts exactly the duplicates of an entry and
// partitions the rest by order — checked against a direct scan.
func TestQuickSplitRun(t *testing.T) {
	f := func(seed int64, copies uint8) bool {
		side := int64(1 << 10)
		tr := NewSPaC(sfc.Hilbert, 2, geom.UniverseBox(2, side))
		pts := workload.GenUniform(500, 2, side, seed)
		dup := pts[0]
		for i := 0; i < int(copies)%40; i++ {
			pts = append(pts, dup)
		}
		tr.Build(pts)
		e := tr.encode(dup)
		lt, gt, count := tr.splitRun(tr.root, e)
		// Count ground truth.
		want := 0
		for _, p := range pts {
			if p == dup {
				want++
			}
		}
		if count != want {
			t.Logf("count %d want %d", count, want)
			return false
		}
		// lt strictly below, gt strictly above; sizes add up.
		ltEnts, _ := collectOrdered(lt, nil, true)
		gtEnts, _ := collectOrdered(gt, nil, true)
		if len(ltEnts)+len(gtEnts)+count != len(pts) {
			return false
		}
		for _, x := range ltEnts {
			if cmpEntry(x, e) >= 0 {
				return false
			}
		}
		for _, x := range gtEnts {
			if cmpEntry(x, e) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: join on arbitrary split points of a sorted entry set yields a
// tree with all invariants — the rotation cases get hit from many angles.
func TestQuickJoinBalance(t *testing.T) {
	side := int64(1 << 16)
	tr := NewSPaC(sfc.Hilbert, 2, geom.UniverseBox(2, side))
	base := tr.encodeAndSort(workload.GenUniform(3000, 2, side, 9))
	f := func(cut uint16) bool {
		i := int(cut) % len(base)
		l := tr.buildSortedEnts(base[:i:i])
		r := tr.buildSortedEnts(base[i+1 : len(base) : len(base)])
		tr.root = tr.join(l, base[i], r)
		if err := tr.Validate(); err != nil {
			t.Log(err)
			return false
		}
		return tr.Size() == len(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Extremely lopsided joins: join a tiny tree with a huge one (both
// directions) — the deep-spine path of RightJoin/LeftJoin.
func TestLopsidedJoins(t *testing.T) {
	side := int64(1 << 16)
	tr := NewSPaC(sfc.Hilbert, 2, geom.UniverseBox(2, side))
	ents := tr.encodeAndSort(workload.GenUniform(20000, 2, side, 11))
	for _, cut := range []int{1, 3, 41, len(ents) - 2, len(ents) - 42} {
		l := tr.buildSortedEnts(ents[:cut:cut])
		r := tr.buildSortedEnts(ents[cut+1 : len(ents) : len(ents)])
		tr.root = tr.join(l, ents[cut], r)
		if err := tr.Validate(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if tr.Size() != len(ents) {
			t.Fatalf("cut %d: size %d", cut, tr.Size())
		}
	}
}

// Boundary coordinates at the curve precision limit must encode, insert
// and query correctly.
func TestPrecisionBoundary(t *testing.T) {
	for _, curve := range []sfc.Curve{sfc.Morton, sfc.Hilbert} {
		maxc := sfc.MaxCoord(curve, 2)
		u := geom.BoxOf(geom.Pt2(0, 0), geom.Pt2(maxc, maxc))
		tr := New(curve, PartialOrder, func() core.Options {
			o := core.DefaultOptions(2, u)
			o.LeafWrap = 40
			o.Alpha = 0.2
			return o
		}())
		pts := []geom.Point{
			geom.Pt2(0, 0), geom.Pt2(maxc, maxc), geom.Pt2(0, maxc),
			geom.Pt2(maxc, 0), geom.Pt2(maxc/2, maxc/2),
		}
		tr.Build(pts)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%v: %v", curve, err)
		}
		for _, p := range pts {
			nn := tr.KNN(p, 1, nil)
			if len(nn) != 1 || nn[0] != p {
				t.Fatalf("%v: corner %v lost", curve, p)
			}
		}
	}
}
