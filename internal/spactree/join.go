package spactree

// Join-based rebalancing (Alg. 4 lines 20-31), following the
// weight-balanced join of Blelloch, Ferizovic & Sun [17] as adapted by
// PaC-trees [23]: Join is the only rebalancing primitive; RightJoin
// descends the right spine of the heavier left tree until the remainder
// balances with the right tree, attaches, and repairs with single or
// double rotations on the way out. All node creation funnels through
// mkNode, so the leaf-wrap invariant is maintained at every step, and all
// expose calls restore in-leaf order lazily.

// join returns a balanced tree over l ∪ {k} ∪ r, assuming every entry in l
// is <= k and every entry in r is >= k (weak BST invariant on the total
// (code, point) order).
func (t *Tree) join(l *node, k Entry, r *node) *node {
	if t.balancedNodes(l, r) {
		return t.mkNode(l, k, r)
	}
	if weight(l) > weight(r) {
		return t.joinRight(l, k, r)
	}
	return t.joinLeft(l, k, r)
}

// joinRight handles the case weight(l) > weight(r).
func (t *Tree) joinRight(l *node, k Entry, r *node) *node {
	if t.balancedNodes(l, r) {
		return t.mkNode(l, k, r)
	}
	ll, lk, lr := t.expose(l)
	tt := t.joinRight(lr, k, r)
	if t.balancedNodes(ll, tt) {
		return t.mkNode(ll, lk, tt)
	}
	// Rebalance by rotation (Alg. 4 line 30).
	tl, tk, tr := t.expose(tt)
	if t.likeWeights(weight(ll)+weight(tl), weight(tr)) && t.balancedNodes(ll, tl) {
		// Single left rotation.
		return t.mkNode(t.mkNode(ll, lk, tl), tk, tr)
	}
	// Double rotation: rotate tl right, then left.
	tll, tlk, tlr := t.expose(tl)
	return t.mkNode(t.mkNode(ll, lk, tll), tlk, t.mkNode(tlr, tk, tr))
}

// joinLeft mirrors joinRight for weight(r) > weight(l).
func (t *Tree) joinLeft(l *node, k Entry, r *node) *node {
	if t.balancedNodes(l, r) {
		return t.mkNode(l, k, r)
	}
	rl, rk, rr := t.expose(r)
	tt := t.joinLeft(l, k, rl)
	if t.balancedNodes(tt, rr) {
		return t.mkNode(tt, rk, rr)
	}
	tl, tk, tr := t.expose(tt)
	if t.likeWeights(weight(tl), weight(tr)+weight(rr)) && t.balancedNodes(tr, rr) {
		// Single right rotation.
		return t.mkNode(tl, tk, t.mkNode(tr, rk, rr))
	}
	trl, trk, trr := t.expose(tr)
	return t.mkNode(t.mkNode(tl, tk, trl), trk, t.mkNode(trr, rk, rr))
}

// splitLast removes and returns the greatest entry of a non-nil tree.
func (t *Tree) splitLast(nd *node) (*node, Entry) {
	if nd.isLeaf() {
		ents := nd.ents
		if !nd.sorted {
			sortEntries(ents)
			nd.sorted = true
		}
		last := ents[len(ents)-1]
		if len(ents) == 1 {
			return nil, last
		}
		rest := make([]Entry, len(ents)-1)
		copy(rest, ents)
		return t.newLeaf(rest, true), last
	}
	if nd.right == nil {
		return nd.left, nd.pivot
	}
	rest, last := t.splitLast(nd.right)
	return t.join(nd.left, nd.pivot, rest), last
}

// join2 joins two trees with no middle entry (used when a batch deletion
// consumes a pivot).
func (t *Tree) join2(l, r *node) *node {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	rest, k := t.splitLast(l)
	return t.join(rest, k, r)
}

// splitRun extracts every copy of entry e from the subtree: it returns the
// tree of entries strictly below e, the tree strictly above, and the
// number of copies removed. Duplicate entries (identical code and point)
// may straddle pivots on both sides, so plain routing cannot delete them;
// batch deletion calls this on the rare equal-to-pivot runs.
func (t *Tree) splitRun(nd *node, e Entry) (lt, gt *node, count int) {
	if nd == nil {
		return nil, nil, 0
	}
	if nd.isLeaf() {
		var lo, hi []Entry
		for _, x := range nd.ents {
			switch c := cmpEntry(x, e); {
			case c < 0:
				lo = append(lo, x)
			case c > 0:
				hi = append(hi, x)
			default:
				count++
			}
		}
		if len(lo) > 0 {
			lt = t.newLeaf(lo, nd.sorted)
		}
		if len(hi) > 0 {
			gt = t.newLeaf(hi, nd.sorted)
		}
		return lt, gt, count
	}
	switch c := cmpEntry(e, nd.pivot); {
	case c < 0:
		llt, lgt, n := t.splitRun(nd.left, e)
		return llt, t.join(lgt, nd.pivot, nd.right), n
	case c > 0:
		rlt, rgt, n := t.splitRun(nd.right, e)
		return t.join(nd.left, nd.pivot, rlt), rgt, n
	default:
		// The pivot itself is a copy; copies may extend into both
		// subtrees (left holds <= pivot, right holds >= pivot).
		llt, _, nl := t.splitRun(nd.left, e)
		_, rgt, nr := t.splitRun(nd.right, e)
		return llt, rgt, nl + nr + 1
	}
}
