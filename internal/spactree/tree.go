package spactree

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/sfc"
)

// Mode selects between the paper's SPaC-tree and the CPAM baseline.
type Mode int

const (
	// PartialOrder is the SPaC-tree (§4): unsorted leaves, HybridSort.
	PartialOrder Mode = iota
	// TotalOrder is the CPAM baseline: sorted leaves, precomputed codes.
	TotalOrder
)

// Tree is a SPaC-tree or CPAM tree over a Morton or Hilbert curve.
type Tree struct {
	opts  core.Options
	curve sfc.Curve
	mode  Mode
	root  *node
}

var _ core.Index = (*Tree)(nil)

// New returns an empty tree. The universe must fit the curve's precision
// (§4.3: integer coordinates only; 3D data must be scaled to 21 bits).
func New(curve sfc.Curve, mode Mode, opts core.Options) *Tree {
	opts.Validate()
	maxc := sfc.MaxCoord(curve, opts.Dims)
	u := opts.Universe
	for d := 0; d < opts.Dims; d++ {
		if u.Lo[d] < 0 || u.Hi[d] > maxc {
			panic(fmt.Sprintf("spactree: universe exceeds %v-curve precision (max coord %d)", curve, maxc))
		}
	}
	return &Tree{opts: opts, curve: curve, mode: mode}
}

// NewSPaC returns a SPaC-tree with the paper's parameters (§C: leaf wrap
// 40, weight-balance α = 0.2).
func NewSPaC(curve sfc.Curve, dims int, universe geom.Box) *Tree {
	opts := core.DefaultOptions(dims, universe)
	opts.LeafWrap = 40
	opts.Alpha = 0.2
	return New(curve, PartialOrder, opts)
}

// NewCPAM returns the CPAM baseline with the same parameters.
func NewCPAM(curve sfc.Curve, dims int, universe geom.Box) *Tree {
	opts := core.DefaultOptions(dims, universe)
	opts.LeafWrap = 40
	opts.Alpha = 0.2
	return New(curve, TotalOrder, opts)
}

// Name implements core.Index, matching the paper's table labels.
func (t *Tree) Name() string {
	if t.mode == TotalOrder {
		return "CPAM-" + t.curve.String()
	}
	return "SPaC-" + t.curve.String()
}

// Dims implements core.Index.
func (t *Tree) Dims() int { return t.opts.Dims }

// Size implements core.Index.
func (t *Tree) Size() int { return sizeOf(t.root) }

// Curve returns the tree's space-filling curve.
func (t *Tree) Curve() sfc.Curve { return t.curve }

// Build implements core.Index: Alg. 3 for SPaC mode, the plain
// precompute-sort-build for CPAM mode.
func (t *Tree) Build(pts []geom.Point) {
	if t.mode == PartialOrder {
		t.root = t.buildHybrid(pts)
	} else {
		t.root = t.buildPlain(pts)
	}
}

// BatchInsert implements core.Index (Alg. 4).
func (t *Tree) BatchInsert(pts []geom.Point) {
	if len(pts) == 0 {
		return
	}
	batch := t.encodeAndSort(pts)
	t.root = t.insertSorted(t.root, batch)
}

// BatchDelete implements core.Index (multiset semantics, §4.2 last
// paragraph).
func (t *Tree) BatchDelete(pts []geom.Point) {
	if len(pts) == 0 || t.root == nil {
		return
	}
	batch := t.encodeAndSort(pts)
	t.root = t.deleteSorted(t.root, batch)
}

const seqCutoff = 2048

// BatchDiff implements core.Index: deletions apply before insertions.
// Both halves share one pass of code computation and sorting.
func (t *Tree) BatchDiff(ins, del []geom.Point) {
	if len(del) > 0 && t.root != nil {
		t.root = t.deleteSorted(t.root, t.encodeAndSort(del))
	}
	if len(ins) > 0 {
		t.root = t.insertSorted(t.root, t.encodeAndSort(ins))
	}
}
