package spactree

import (
	"repro/internal/geom"
	"repro/internal/parallel"
)

// pair is HybridSort's sort element: only the code and the point's index
// move through the sort; coordinates stay put until the final gather
// (Alg. 3 line 13 — "we only sort the ⟨code, id⟩ pairs, without the
// coordinates").
type pair struct {
	code uint64
	id   int32
}

// buildHybrid is the SPaC-tree construction (Alg. 3): the SFC code of each
// point is computed when the sorter first touches it, ⟨code, id⟩ pairs are
// sample-sorted, and BuildSorted gathers coordinates into leaves.
func (t *Tree) buildHybrid(pts []geom.Point) *node {
	n := len(pts)
	if n == 0 {
		return nil
	}
	pairs := make([]pair, n)
	parallel.Blocks(n, 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			pairs[i] = pair{code: t.encode(pts[i]).Code, id: int32(i)}
		}
	})
	parallel.Sort(pairs, func(a, b pair) int {
		switch {
		case a.code < b.code:
			return -1
		case a.code > b.code:
			return 1
		}
		// Tie-break by coordinates so the total order matches cmpEntry.
		return cmpEntry(Entry{a.code, pts[a.id]}, Entry{b.code, pts[b.id]})
	})
	return t.buildSortedPairs(pts, pairs)
}

// buildSortedPairs is BuildSorted (Alg. 3 lines 20-31): perfectly balanced
// recursion; leaves gather their points by id (line 23), paying the cache
// misses here instead of moving 24-byte coordinates through every sorting
// round.
func (t *Tree) buildSortedPairs(pts []geom.Point, pairs []pair) *node {
	n := len(pairs)
	if n == 0 {
		return nil
	}
	if n <= t.opts.LeafWrap {
		ents := make([]Entry, n)
		for i, pr := range pairs {
			ents[i] = Entry{Code: pr.code, P: pts[pr.id]}
		}
		return t.newLeaf(ents, true)
	}
	m := n / 2
	var l, r *node
	parallel.DoIf(n >= seqCutoff,
		func() { l = t.buildSortedPairs(pts, pairs[:m]) },
		func() { r = t.buildSortedPairs(pts, pairs[m+1:]) })
	k := Entry{Code: pairs[m].code, P: pts[pairs[m].id]}
	return t.rawNode(l, k, r)
}

// buildPlain is the CPAM construction the paper measures as the "plain
// adaptation": precompute full ⟨code, point⟩ pairs in a separate pass,
// sort the 32-byte entries, build. The extra reads/writes of whole entries
// through every sorting round are the overhead HybridSort removes (§4.1).
func (t *Tree) buildPlain(pts []geom.Point) *node {
	n := len(pts)
	if n == 0 {
		return nil
	}
	ents := make([]Entry, n)
	parallel.For(n, 4096, func(i int) {
		ents[i] = t.encode(pts[i])
	})
	parallel.Sort(ents, cmpEntry)
	return t.buildSortedEnts(ents)
}

// buildSortedEnts builds a perfectly balanced tree over sorted entries.
// Leaves alias segments of ents with clamped capacity, so later appends
// reallocate instead of clobbering a sibling's segment.
func (t *Tree) buildSortedEnts(ents []Entry) *node {
	n := len(ents)
	if n == 0 {
		return nil
	}
	if n <= t.opts.LeafWrap {
		return t.newLeaf(ents[0:n:n], true)
	}
	m := n / 2
	var l, r *node
	parallel.DoIf(n >= seqCutoff,
		func() { l = t.buildSortedEnts(ents[:m:m]) },
		func() { r = t.buildSortedEnts(ents[m+1 : n : n]) })
	return t.rawNode(l, ents[m], r)
}

// encodeAndSort turns an update batch into sorted entries (Alg. 4 line 2).
func (t *Tree) encodeAndSort(pts []geom.Point) []Entry {
	ents := make([]Entry, len(pts))
	parallel.For(len(pts), 4096, func(i int) {
		ents[i] = t.encode(pts[i])
	})
	parallel.Sort(ents, cmpEntry)
	return ents
}
