package spactree

import (
	"math"
	"testing"

	"repro/internal/sfc"
	"repro/internal/workload"
)

// The BB[α] balance invariant implies height <= log_{1/(1-α)}(n/φ) + O(1)
// (§4.3: O(log n) update cost depends on it). Check the bound holds after
// construction and after sustained skewed updates.
func TestHeightBoundTheorem(t *testing.T) {
	alpha := 0.2
	phi := 40.0
	bound := func(n int) int {
		if n == 0 {
			return 0
		}
		return int(math.Log(float64(n)/phi)/math.Log(1/(1-alpha))) + 4
	}
	for _, dist := range []workload.Dist{workload.Uniform, workload.Sweepline, workload.Varden} {
		pts := workload.Generate(dist, 60000, 2, testSide, 3)
		tr := NewSPaC(sfc.Hilbert, 2, universe())
		tr.Build(pts[:20000])
		if h, b := tr.Height(), bound(20000); h > b {
			t.Fatalf("%s: built height %d exceeds BB[α] bound %d", dist, h, b)
		}
		for lo := 20000; lo < 60000; lo += 1000 {
			tr.BatchInsert(pts[lo : lo+1000])
		}
		if h, b := tr.Height(), bound(60000); h > b {
			t.Fatalf("%s: post-update height %d exceeds BB[α] bound %d", dist, h, b)
		}
		// Shrink back down: deletions must not strand a tall skeleton.
		tr.BatchDelete(pts[:50000])
		if h, b := tr.Height(), bound(10000); h > b {
			t.Fatalf("%s: post-delete height %d exceeds BB[α] bound %d", dist, h, b)
		}
	}
}
