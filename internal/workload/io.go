package workload

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/geom"
)

// Binary dataset format used by cmd/psigen and cmd/psibench -data:
//
//	magic  uint32  "PSI1"
//	dims   uint32
//	n      uint64
//	coords n*dims int64 little-endian (row-major)
//
// This mirrors the paper's artifact workflow of generating datasets to disk
// once and reusing them across experiments (§F.6).

const fileMagic = 0x50534931 // "PSI1"

// WritePoints writes pts in the binary dataset format.
func WritePoints(w io.Writer, pts []geom.Point, dims int) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], fileMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(dims))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(pts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, p := range pts {
		for d := 0; d < dims; d++ {
			binary.LittleEndian.PutUint64(buf[:], uint64(p[d]))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadPoints reads a binary dataset.
func ReadPoints(r io.Reader) (pts []geom.Point, dims int, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("workload: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != fileMagic {
		return nil, 0, fmt.Errorf("workload: bad magic (not a PSI dataset)")
	}
	dims = int(binary.LittleEndian.Uint32(hdr[4:]))
	if dims < 1 || dims > geom.MaxDims {
		return nil, 0, fmt.Errorf("workload: unsupported dims %d", dims)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	pts = make([]geom.Point, n)
	var buf [8]byte
	for i := range pts {
		for d := 0; d < dims; d++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, 0, fmt.Errorf("workload: truncated at point %d: %w", i, err)
			}
			pts[i][d] = int64(binary.LittleEndian.Uint64(buf[:]))
		}
	}
	return pts, dims, nil
}

// SaveFile writes pts to path in the binary dataset format.
func SaveFile(path string, pts []geom.Point, dims int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WritePoints(f, pts, dims); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a binary dataset from path.
func LoadFile(path string) ([]geom.Point, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadPoints(f)
}
