package workload

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/geom"
)

// TestPointsRoundTrip writes datasets in the binary format and reads them
// back: the points, their order, and the dimensionality must survive in
// both 2D and 3D, including negative coordinates and the empty set.
func TestPointsRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		dims int
		pts  []geom.Point
	}{
		{"uniform-2d", 2, GenUniform(5000, 2, DefaultSide, 1)},
		{"varden-3d", 3, GenVarden(3000, 3, DefaultSide3D, 2)},
		{"negative-coords", 2, []geom.Point{geom.Pt2(-5, 3), geom.Pt2(0, -1<<40)}},
		{"empty", 3, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WritePoints(&buf, tc.pts, tc.dims); err != nil {
				t.Fatalf("WritePoints: %v", err)
			}
			wantLen := 16 + 8*tc.dims*len(tc.pts)
			if buf.Len() != wantLen {
				t.Fatalf("encoded %d bytes, want %d", buf.Len(), wantLen)
			}
			got, dims, err := ReadPoints(&buf)
			if err != nil {
				t.Fatalf("ReadPoints: %v", err)
			}
			if dims != tc.dims {
				t.Fatalf("dims = %d, want %d", dims, tc.dims)
			}
			if len(got) != len(tc.pts) {
				t.Fatalf("read %d points, want %d", len(got), len(tc.pts))
			}
			for i := range got {
				if got[i] != tc.pts[i] {
					t.Fatalf("point %d = %v, want %v", i, got[i], tc.pts[i])
				}
			}
		})
	}
}

// TestFileRoundTrip covers the SaveFile/LoadFile path end to end.
func TestFileRoundTrip(t *testing.T) {
	for _, dims := range []int{2, 3} {
		pts := GenUniform(1000, dims, DefaultSide3D, int64(dims))
		path := filepath.Join(t.TempDir(), "pts.psi")
		if err := SaveFile(path, pts, dims); err != nil {
			t.Fatalf("SaveFile %dD: %v", dims, err)
		}
		got, gotDims, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile %dD: %v", dims, err)
		}
		if gotDims != dims || len(got) != len(pts) {
			t.Fatalf("LoadFile %dD: got %d points dims %d", dims, len(got), gotDims)
		}
		for i := range got {
			if got[i] != pts[i] {
				t.Fatalf("%dD point %d = %v, want %v", dims, i, got[i], pts[i])
			}
		}
	}
}

// TestReadPointsRejectsGarbage pins the error paths: wrong magic, an
// unsupported dimensionality, and a truncated coordinate stream.
func TestReadPointsRejectsGarbage(t *testing.T) {
	if _, _, err := ReadPoints(bytes.NewReader([]byte("not a psi file....."))); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}

	var buf bytes.Buffer
	if err := WritePoints(&buf, GenUniform(10, 2, 100, 3), 2); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	bad := append([]byte(nil), full...)
	bad[4] = 7 // dims field
	if _, _, err := ReadPoints(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "dims") {
		t.Fatalf("bad dims: err = %v", err)
	}

	if _, _, err := ReadPoints(bytes.NewReader(full[:len(full)-5])); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated: err = %v", err)
	}
}
