// Package workload generates the datasets and query sets of the paper's
// evaluation (§5.1): Uniform, Sweepline and Varden synthetic distributions,
// the real-world stand-ins (Cosmo-like 3D and OSM-like 2D clustering), and
// the in-distribution / out-of-distribution kNN query sets plus range-query
// generators.
//
// All generators are deterministic in (seed, n, dims) and generate in
// parallel with per-chunk PRNGs, so a billion-point dataset on the paper's
// machine and a million-point dataset here are drawn from the same family.
package workload

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// hashMul decorrelates per-chunk PRNG seeds (SplitMix64-style multiplier,
// truncated to a positive int64).
const hashMul = int64(0x2545F4914F6CDD1D)

// DefaultSide is the coordinate range [0, DefaultSide] used for 2D data in
// the paper (§5.1: "All coordinates are 64-bit integers in [0, 1e9]").
const DefaultSide = int64(1_000_000_000)

// DefaultSide3D is the 3D coordinate range; the paper scales 3D data to
// [0, 1e6] so Hilbert/Morton 21-bit precision suffices (§E).
const DefaultSide3D = int64(1_000_000)

// Dist names a point distribution.
type Dist string

const (
	// Uniform draws each point uniformly from the universe.
	Uniform Dist = "uniform"
	// Sweepline is uniform data sorted along dimension 0: it simulates a
	// skewed *update pattern* in which arriving batches have spatial
	// locality (§5.1).
	Sweepline Dist = "sweepline"
	// Varden is the clustered distribution of Gan & Tao [27]: a random
	// walk with small steps and a low restart probability, producing
	// far-apart dense clusters. It simulates a skewed *point
	// distribution*.
	Varden Dist = "varden"
	// Cosmo is the stand-in for the COSMO astronomy dataset (Fig. 6):
	// heavily clustered 3D points along filament-like walks.
	Cosmo Dist = "cosmo"
	// OSM is the stand-in for OpenStreetMap North America (Fig. 6): 2D
	// points concentrated along polyline "roads" with a sparse uniform
	// background.
	OSM Dist = "osm"
)

// Side returns the conventional universe side for the distribution.
func (d Dist) Side(dims int) int64 {
	if dims == 3 {
		return DefaultSide3D
	}
	return DefaultSide
}

// Universe returns the conventional universe box for the distribution.
func Universe(dims int, side int64) geom.Box { return geom.UniverseBox(dims, side) }

// Generate produces n points of the given distribution. It panics on an
// unknown distribution (programmer error, not input error).
func Generate(d Dist, n, dims int, side int64, seed int64) []geom.Point {
	switch d {
	case Uniform:
		return GenUniform(n, dims, side, seed)
	case Sweepline:
		return GenSweepline(n, dims, side, seed)
	case Varden:
		return GenVarden(n, dims, side, seed)
	case Cosmo:
		return GenCosmo(n, dims, side, seed)
	case OSM:
		return GenOSM(n, dims, side, seed)
	}
	panic("workload: unknown distribution " + string(d))
}

// GenUniform draws n points uniformly from [0, side]^dims.
func GenUniform(n, dims int, side int64, seed int64) []geom.Point {
	pts := make([]geom.Point, n)
	const grain = 8192
	parallel.Blocks(n, grain, func(lo, hi int) {
		rng := rand.New(rand.NewSource(seed ^ int64(lo)*hashMul))
		for i := lo; i < hi; i++ {
			for d := 0; d < dims; d++ {
				pts[i][d] = rng.Int63n(side + 1)
			}
		}
	})
	return pts
}

// GenSweepline draws uniform points and sorts them by dimension 0, so that
// consecutive update batches sweep across the space.
func GenSweepline(n, dims int, side int64, seed int64) []geom.Point {
	pts := GenUniform(n, dims, side, seed)
	parallel.Sort(pts, func(a, b geom.Point) int {
		switch {
		case a[0] < b[0]:
			return -1
		case a[0] > b[0]:
			return 1
		}
		return 0
	})
	return pts
}

// vardenParams tunes the random walk of [27]: step size relative to the
// universe and restart probability. Small steps + rare restarts give the
// far-apart dense clusters the paper exploits to stress orth-trees.
type walkParams struct {
	stepFrac    int64   // step drawn from [-side/stepFrac, side/stepFrac]
	restartProb float64 // probability of teleporting to a fresh uniform spot
}

func genWalk(n, dims int, side int64, seed int64, p walkParams) []geom.Point {
	pts := make([]geom.Point, n)
	// Parallel over independent walk segments: each chunk restarts at a
	// fresh position, which is itself a restart event of the walk, so the
	// distribution family is unchanged while generation scales.
	const grain = 1 << 15
	step := side / p.stepFrac
	if step < 1 {
		step = 1
	}
	parallel.Blocks(n, grain, func(lo, hi int) {
		rng := rand.New(rand.NewSource(seed ^ int64(lo)*hashMul))
		var cur geom.Point
		for d := 0; d < dims; d++ {
			cur[d] = rng.Int63n(side + 1)
		}
		for i := lo; i < hi; i++ {
			if rng.Float64() < p.restartProb {
				for d := 0; d < dims; d++ {
					cur[d] = rng.Int63n(side + 1)
				}
			} else {
				for d := 0; d < dims; d++ {
					c := cur[d] + rng.Int63n(2*step+1) - step
					if c < 0 {
						c = -c
					}
					if c > side {
						c = 2*side - c
					}
					cur[d] = c
				}
			}
			pts[i] = cur
		}
	})
	return pts
}

// GenVarden generates the Varden clustered distribution [27].
func GenVarden(n, dims int, side int64, seed int64) []geom.Point {
	return genWalk(n, dims, side, seed, walkParams{stepFrac: 10000, restartProb: 1e-4})
}

// GenCosmo generates the COSMO stand-in: tighter clusters, even rarer
// restarts (astronomical surveys concentrate points in filaments).
func GenCosmo(n, dims int, side int64, seed int64) []geom.Point {
	return genWalk(n, dims, side, seed, walkParams{stepFrac: 50000, restartProb: 3e-5})
}

// GenOSM generates the OSM stand-in: 85% of points along polyline walks
// with moderate steps ("roads"), 15% uniform background ("rural").
func GenOSM(n, dims int, side int64, seed int64) []geom.Point {
	nRoad := n * 85 / 100
	road := genWalk(nRoad, dims, side, seed, walkParams{stepFrac: 2000, restartProb: 5e-4})
	bg := GenUniform(n-nRoad, dims, side, seed^0x5bf03635)
	pts := append(road, bg...)
	// Shuffle deterministically so update batches mix road and rural
	// points the way OSM ingestion does.
	rng := rand.New(rand.NewSource(seed ^ 0x2545f491))
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
	return pts
}

// InDQueries samples nq in-distribution query points: fresh draws from the
// same distribution family (different seed), matching the paper's InD
// query sets.
func InDQueries(d Dist, nq, dims int, side int64, seed int64) []geom.Point {
	return Generate(d, nq, dims, side, seed+0x10d)
}

// OODQueries samples nq out-of-distribution query points. For clustered or
// sorted data the natural OOD choice is uniform over the universe; for
// uniform data it is a clustered (Varden) draw — in both cases queries land
// where the data is not, which is what the paper's OOD columns measure.
func OODQueries(d Dist, nq, dims int, side int64, seed int64) []geom.Point {
	if d == Uniform {
		return GenVarden(nq, dims, side, seed+0xda7a)
	}
	return GenUniform(nq, dims, side, seed+0xda7a)
}

// RangeQueries returns nq axis-aligned query boxes with side lengths drawn
// so the expected output size sweeps the paper's range (§5.1: range sizes
// chosen for 1e4–1e6 outputs at n = 1e9; we parameterize by the target
// fraction instead so the harness scales). frac is the expected fraction of
// the universe volume covered by each box.
func RangeQueries(nq, dims int, side int64, frac float64, seed int64) []geom.Box {
	rng := rand.New(rand.NewSource(seed ^ 0xb0c5))
	// Box side for target volume fraction: side * frac^(1/dims).
	ext := int64(float64(side) * math.Pow(frac, 1.0/float64(dims)))
	if ext < 1 {
		ext = 1
	}
	boxes := make([]geom.Box, nq)
	for i := range boxes {
		var lo geom.Point
		for d := 0; d < dims; d++ {
			maxLo := side - ext
			if maxLo < 0 {
				maxLo = 0
			}
			lo[d] = rng.Int63n(maxLo + 1)
		}
		hi := lo
		for d := 0; d < dims; d++ {
			hi[d] = lo[d] + ext
		}
		boxes[i] = geom.BoxOf(lo, hi)
	}
	return boxes
}
