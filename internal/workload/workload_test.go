package workload

import (
	"bytes"
	"math"
	"slices"
	"testing"

	"repro/internal/geom"
)

func inBounds(t *testing.T, pts []geom.Point, dims int, side int64) {
	t.Helper()
	for i, p := range pts {
		for d := 0; d < dims; d++ {
			if p[d] < 0 || p[d] > side {
				t.Fatalf("point %d coord %d = %d out of [0,%d]", i, d, p[d], side)
			}
		}
		for d := dims; d < geom.MaxDims; d++ {
			if p[d] != 0 {
				t.Fatalf("point %d has nonzero unused dim %d", i, d)
			}
		}
	}
}

func TestGeneratorsBoundsAndDeterminism(t *testing.T) {
	for _, d := range []Dist{Uniform, Sweepline, Varden, Cosmo, OSM} {
		for _, dims := range []int{2, 3} {
			side := d.Side(dims)
			a := Generate(d, 5000, dims, side, 42)
			b := Generate(d, 5000, dims, side, 42)
			if len(a) != 5000 {
				t.Fatalf("%s: wrong size %d", d, len(a))
			}
			if !slices.Equal(a, b) {
				t.Fatalf("%s dims=%d: not deterministic", d, dims)
			}
			c := Generate(d, 5000, dims, side, 43)
			if slices.Equal(a, c) {
				t.Fatalf("%s: seed ignored", d)
			}
			inBounds(t, a, dims, side)
		}
	}
}

func TestSweeplineSorted(t *testing.T) {
	pts := GenSweepline(20000, 2, DefaultSide, 1)
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatalf("sweepline not sorted at %d", i)
		}
	}
}

// clusteringScore measures spatial skew as the fraction of occupied cells
// in a coarse grid: uniform data occupies nearly all cells, clustered data
// only a few.
func clusteringScore(pts []geom.Point, side int64) float64 {
	const g = 64
	occupied := map[[2]int64]bool{}
	for _, p := range pts {
		occupied[[2]int64{p[0] * g / (side + 1), p[1] * g / (side + 1)}] = true
	}
	return float64(len(occupied)) / (g * g)
}

func TestVardenIsClustered(t *testing.T) {
	n := 20000
	u := clusteringScore(GenUniform(n, 2, DefaultSide, 7), DefaultSide)
	v := clusteringScore(GenVarden(n, 2, DefaultSide, 7), DefaultSide)
	c := clusteringScore(GenCosmo(n, 2, DefaultSide, 7), DefaultSide)
	if v > u/2 {
		t.Fatalf("Varden not clustered: score %.3f vs uniform %.3f", v, u)
	}
	if c > v {
		t.Fatalf("Cosmo (%.3f) should cluster at least as hard as Varden (%.3f)", c, v)
	}
}

func TestOSMMixture(t *testing.T) {
	n := 20000
	o := clusteringScore(GenOSM(n, 2, DefaultSide, 7), DefaultSide)
	u := clusteringScore(GenUniform(n, 2, DefaultSide, 7), DefaultSide)
	v := clusteringScore(GenVarden(n, 2, DefaultSide, 7), DefaultSide)
	if !(o > v && o < u) {
		t.Fatalf("OSM score %.3f should sit between Varden %.3f and Uniform %.3f", o, v, u)
	}
}

func TestQueriesDistinctFromData(t *testing.T) {
	ind := InDQueries(Varden, 1000, 2, DefaultSide, 9)
	ood := OODQueries(Varden, 1000, 2, DefaultSide, 9)
	inBounds(t, ind, 2, DefaultSide)
	inBounds(t, ood, 2, DefaultSide)
	// OOD for clustered data is uniform: must occupy far more cells.
	if clusteringScore(ood, DefaultSide) < 2*clusteringScore(ind, DefaultSide) {
		t.Fatal("OOD queries should be much less clustered than InD for Varden")
	}
	// OOD for uniform data is clustered.
	oodU := OODQueries(Uniform, 1000, 2, DefaultSide, 9)
	indU := InDQueries(Uniform, 1000, 2, DefaultSide, 9)
	if clusteringScore(oodU, DefaultSide) > clusteringScore(indU, DefaultSide)/2 {
		t.Fatal("OOD queries for Uniform should be clustered")
	}
}

func TestRangeQueriesVolume(t *testing.T) {
	frac := 0.01
	boxes := RangeQueries(200, 2, DefaultSide, frac, 5)
	wantExt := int64(float64(DefaultSide) * math.Sqrt(frac))
	for i, b := range boxes {
		for d := 0; d < 2; d++ {
			if b.Lo[d] < 0 || b.Hi[d] > DefaultSide+wantExt {
				t.Fatalf("box %d out of range: %v", i, b)
			}
			if b.Side(d) != wantExt {
				t.Fatalf("box %d side %d, want %d", i, b.Side(d), wantExt)
			}
		}
	}
	// Tiny fraction must still give a valid (>=1 cell) box.
	tiny := RangeQueries(10, 3, 100, 1e-12, 5)
	for _, b := range tiny {
		if b.IsEmpty() {
			t.Fatal("tiny range box is empty")
		}
	}
}

func TestPointsIORoundTrip(t *testing.T) {
	pts := GenVarden(3000, 3, DefaultSide3D, 11)
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts, 3); err != nil {
		t.Fatal(err)
	}
	got, dims, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dims != 3 || !slices.Equal(got, pts) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadPointsErrors(t *testing.T) {
	if _, _, err := ReadPoints(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("want error on truncated header")
	}
	bad := make([]byte, 16)
	if _, _, err := ReadPoints(bytes.NewReader(bad)); err == nil {
		t.Fatal("want error on bad magic")
	}
	var buf bytes.Buffer
	if err := WritePoints(&buf, GenUniform(10, 2, 100, 1), 2); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, _, err := ReadPoints(bytes.NewReader(trunc)); err == nil {
		t.Fatal("want error on truncated body")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := t.TempDir() + "/pts.bin"
	pts := GenUniform(100, 2, 1000, 3)
	if err := SaveFile(path, pts, 2); err != nil {
		t.Fatal(err)
	}
	got, dims, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if dims != 2 || !slices.Equal(got, pts) {
		t.Fatal("file round trip mismatch")
	}
}
