package wal

import (
	"encoding/binary"
	"hash/crc32"
	"maps"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
)

func openT(t *testing.T, dir string, opts Options) (*Log[string], *Recovery[string]) {
	t.Helper()
	l, rec, err := Open[string](dir, StringCodec{}, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rec
}

func closeT(t *testing.T, l *Log[string]) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// fold applies windows to a model map the way recovery should.
func fold(m map[string]geom.Point, ops []Op[string]) {
	for _, o := range ops {
		if o.Del {
			delete(m, o.ID)
		} else {
			m[o.ID] = o.P
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{Fsync: FsyncAlways})
	if len(rec.Entries) != 0 || rec.Seq != 0 {
		t.Fatalf("fresh dir recovered %d entries, seq %d", len(rec.Entries), rec.Seq)
	}
	want := map[string]geom.Point{}
	windows := [][]Op[string]{
		{{ID: "a", P: geom.Pt2(1, 2)}, {ID: "b", P: geom.Pt2(3, 4)}},
		{{ID: "a", P: geom.Pt2(5, 6)}, {ID: "c", P: geom.Pt3(7, 8, 9)}},
		{{ID: "b", Del: true}, {ID: "id with spaces and ünïcode", P: geom.Pt2(-10, 1<<40)}},
		{}, // an empty window must round-trip too
	}
	for _, w := range windows {
		if err := l.AppendWindow(w); err != nil {
			t.Fatalf("AppendWindow: %v", err)
		}
		fold(want, w)
	}
	if got := l.Stats(); got.Appends != 4 || got.Seq != 4 || got.Fsyncs < 4 {
		t.Fatalf("stats after 4 windows: %+v", got)
	}
	closeT(t, l)

	l2, rec2 := openT(t, dir, Options{})
	defer closeT(t, l2)
	if !maps.Equal(rec2.Entries, want) {
		t.Fatalf("recovered %v, want %v", rec2.Entries, want)
	}
	if rec2.Seq != 4 || rec2.Records != 4 || rec2.TruncatedBytes != 0 {
		t.Fatalf("recovery accounting: %+v", rec2)
	}
	// Appends continue the sequence.
	if err := l2.AppendWindow(windows[0]); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if got := l2.Stats().Seq; got != 5 {
		t.Fatalf("seq after recovered append = %d, want 5", got)
	}
}

// TestTornTail chops every possible suffix off a valid log and checks
// that recovery keeps the longest valid record prefix, truncates the
// rest, and leaves the log append-clean.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever})
	windows := [][]Op[string]{
		{{ID: "a", P: geom.Pt2(1, 2)}},
		{{ID: "b", P: geom.Pt2(3, 4)}},
		{{ID: "a", Del: true}, {ID: "c", P: geom.Pt2(5, 6)}},
	}
	// Record the file size after each window so the expected surviving
	// prefix for any cut point is known exactly.
	bounds := []int64{magicLen}
	states := []map[string]geom.Point{{}}
	model := map[string]geom.Point{}
	for _, w := range windows {
		if err := l.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
		fold(model, w)
		bounds = append(bounds, l.Stats().LogBytes)
		states = append(states, maps.Clone(model))
	}
	closeT(t, l)
	full, err := os.ReadFile(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(full)) != bounds[len(bounds)-1] {
		t.Fatalf("log is %d bytes, stats said %d", len(full), bounds[len(bounds)-1])
	}

	for cut := int(bounds[0]); cut < len(full); cut++ {
		// How many whole records survive a file of length cut?
		keep := 0
		for keep+1 < len(bounds) && bounds[keep+1] <= int64(cut) {
			keep++
		}
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2, rec := openT(t, dir2, Options{Fsync: FsyncNever})
		if !maps.Equal(rec.Entries, states[keep]) {
			t.Fatalf("cut %d: recovered %v, want %v", cut, rec.Entries, states[keep])
		}
		wantTrunc := int64(cut) - bounds[keep]
		if rec.TruncatedBytes != wantTrunc {
			t.Fatalf("cut %d: truncated %d bytes, want %d", cut, rec.TruncatedBytes, wantTrunc)
		}
		// The tear is gone: appending and re-recovering must be clean.
		if err := l2.AppendWindow([]Op[string]{{ID: "z", P: geom.Pt2(9, 9)}}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		closeT(t, l2)
		_, rec2 := openT(t, dir2, Options{Fsync: FsyncNever})
		if rec2.TruncatedBytes != 0 {
			t.Fatalf("cut %d: second recovery truncated again (%d bytes)", cut, rec2.TruncatedBytes)
		}
		if p, ok := rec2.Entries["z"]; !ok || p != geom.Pt2(9, 9) {
			t.Fatalf("cut %d: post-truncation append lost: %v", cut, rec2.Entries)
		}
	}
}

// TestCorruptMidRecord flips one byte inside the middle record. A valid
// record follows the damage, so this cannot be a torn append: Open must
// fail loudly (docs/durability.md's contract) rather than silently
// truncate away the journaled windows after the flip.
func TestCorruptMidRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever})
	for i, w := range [][]Op[string]{
		{{ID: "a", P: geom.Pt2(1, 1)}},
		{{ID: "b", P: geom.Pt2(2, 2)}},
		{{ID: "c", P: geom.Pt2(3, 3)}},
	} {
		if err := l.AppendWindow(w); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	firstEnd := magicLen + frameLen + len(encodeWindow(nil, StringCodec{}, 1, []Op[string]{{ID: "a", P: geom.Pt2(1, 1)}}))
	closeT(t, l)
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[firstEnd+frameLen+2] ^= 0xff // inside record 2's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open[string](dir, StringCodec{}, Options{Fsync: FsyncNever}); err == nil ||
		!strings.Contains(err.Error(), "corruption") {
		t.Fatalf("Open on mid-log corruption with a valid record after it: %v, want corruption error", err)
	}
	// The file must be left untouched for forensics — failing Open must
	// not truncate.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(b) {
		t.Fatalf("failed Open changed the log from %d to %d bytes", len(b), len(after))
	}
}

// TestCorruptFinalRecord flips one byte inside the last record: with
// nothing valid after it, the damage is indistinguishable from a torn
// append, so recovery keeps the prefix and truncates.
func TestCorruptFinalRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever})
	for i, w := range [][]Op[string]{
		{{ID: "a", P: geom.Pt2(1, 1)}},
		{{ID: "b", P: geom.Pt2(2, 2)}},
	} {
		if err := l.AppendWindow(w); err != nil {
			t.Fatalf("window %d: %v", i, err)
		}
	}
	closeT(t, l)
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff // inside the final record's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{Fsync: FsyncNever})
	defer closeT(t, l2)
	want := map[string]geom.Point{"a": geom.Pt2(1, 1)}
	if !maps.Equal(rec.Entries, want) {
		t.Fatalf("recovered %v, want only the pre-corruption prefix %v", rec.Entries, want)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("final-record corruption not reported as truncation")
	}
}

// TestSeqRegressionTruncates hand-writes a log whose records go 5 then
// 3: replay must keep the first and cut the regression, never apply
// out-of-order history.
func TestSeqRegressionTruncates(t *testing.T) {
	dir := t.TempDir()
	frame := func(seq uint64, ops []Op[string]) []byte {
		payload := encodeWindow(nil, StringCodec{}, seq, ops)
		rec := make([]byte, frameLen, frameLen+len(payload))
		rec = append(rec, payload...)
		putFrame(rec[:frameLen], rec[frameLen:])
		return rec
	}
	var b []byte
	b = append(b, logMagic...)
	b = append(b, frame(5, []Op[string]{{ID: "a", P: geom.Pt2(1, 1)}})...)
	b = append(b, frame(3, []Op[string]{{ID: "b", P: geom.Pt2(2, 2)}})...)
	if err := os.WriteFile(filepath.Join(dir, logName), b, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, dir, Options{Fsync: FsyncNever})
	defer closeT(t, l)
	if _, ok := rec.Entries["b"]; ok {
		t.Fatal("out-of-order record was replayed")
	}
	if rec.Seq != 5 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovery: %+v", rec)
	}
}

func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	model := map[string]geom.Point{}
	w1 := []Op[string]{{ID: "a", P: geom.Pt2(1, 2)}, {ID: "b", P: geom.Pt2(3, 4)}}
	w2 := []Op[string]{{ID: "b", Del: true}, {ID: "c", P: geom.Pt2(5, 6)}}
	if err := l.AppendWindow(w1); err != nil {
		t.Fatal(err)
	}
	fold(model, w1)
	preBytes := l.Stats().LogBytes
	if err := l.WriteSnapshot(len(model), maps.All(model)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st := l.Stats()
	if st.LogBytes != magicLen || st.SnapshotSeq != 1 || st.Snapshots != 1 {
		t.Fatalf("after snapshot: %+v (pre-snapshot log was %d bytes)", st, preBytes)
	}
	if got := l.AppendsSinceSnapshot(); got != 0 {
		t.Fatalf("AppendsSinceSnapshot = %d after snapshot", got)
	}
	if err := l.AppendWindow(w2); err != nil {
		t.Fatal(err)
	}
	fold(model, w2)
	closeT(t, l)

	_, rec := openT(t, dir, Options{Fsync: FsyncNever})
	if !maps.Equal(rec.Entries, model) {
		t.Fatalf("recovered %v, want %v", rec.Entries, model)
	}
	if rec.SnapshotSeq != 1 || rec.SnapshotObjects != 2 || rec.Seq != 2 || rec.Records != 1 {
		t.Fatalf("recovery accounting: %+v", rec)
	}
}

// TestSnapshotLogOverlap simulates a crash between the snapshot rename
// and the log rotation: the log still holds records at or below the
// snapshot seq. Replay must skip them (they are already folded in) and
// apply only the genuine tail.
func TestSnapshotLogOverlap(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever})
	model := map[string]geom.Point{}
	w1 := []Op[string]{{ID: "a", P: geom.Pt2(1, 1)}}
	w2 := []Op[string]{{ID: "a", P: geom.Pt2(2, 2)}, {ID: "b", P: geom.Pt2(3, 3)}}
	for _, w := range [][]Op[string]{w1, w2} {
		if err := l.AppendWindow(w); err != nil {
			t.Fatal(err)
		}
		fold(model, w)
	}
	logPath := filepath.Join(dir, logName)
	preRotation, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(len(model), maps.All(model)); err != nil {
		t.Fatal(err)
	}
	w3 := []Op[string]{{ID: "c", P: geom.Pt2(4, 4)}}
	if err := l.AppendWindow(w3); err != nil {
		t.Fatal(err)
	}
	fold(model, w3)
	postRotation, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	closeT(t, l)
	// Reconstruct the crash state: old log (seqs 1-2, both <= the
	// snapshot's seq 2) plus the post-rotation tail record (seq 3).
	combined := append(append([]byte{}, preRotation...), postRotation[magicLen:]...)
	if err := os.WriteFile(logPath, combined, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{Fsync: FsyncNever})
	defer closeT(t, l2)
	if !maps.Equal(rec.Entries, model) {
		t.Fatalf("recovered %v, want %v", rec.Entries, model)
	}
	if rec.Records != 3 || rec.Seq != 3 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery accounting: %+v", rec)
	}
}

func TestBadHeaders(t *testing.T) {
	t.Run("log", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), []byte("NOTAWAL\nxxxx"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open[string](dir, StringCodec{}, Options{}); err == nil {
			t.Fatal("Open accepted a foreign log file")
		}
	})
	t.Run("snapshot", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open[string](dir, StringCodec{}, Options{}); err == nil {
			t.Fatal("Open accepted a corrupt snapshot")
		}
	})
	t.Run("snapshot-crc", func(t *testing.T) {
		dir := t.TempDir()
		l, _ := openT(t, dir, Options{Fsync: FsyncNever})
		m := map[string]geom.Point{"a": geom.Pt2(1, 2)}
		if err := l.AppendWindow([]Op[string]{{ID: "a", P: geom.Pt2(1, 2)}}); err != nil {
			t.Fatal(err)
		}
		if err := l.WriteSnapshot(1, maps.All(m)); err != nil {
			t.Fatal(err)
		}
		closeT(t, l)
		path := filepath.Join(dir, snapName)
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[magicLen+1] ^= 0x01
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		// A snapshot is rename-atomic, so corruption is bit rot: hard
		// error, never a silent empty dataset.
		if _, _, err := Open[string](dir, StringCodec{}, Options{}); err == nil ||
			!strings.Contains(err.Error(), "checksum") {
			t.Fatalf("Open on rotted snapshot: %v", err)
		}
	})
}

func TestFsyncInterval(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncInterval, Interval: time.Millisecond})
	if err := l.AppendWindow([]Op[string]{{ID: "a", P: geom.Pt2(1, 2)}}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never fired")
		}
		time.Sleep(time.Millisecond)
	}
	closeT(t, l)
	_, rec := openT(t, dir, Options{})
	if len(rec.Entries) != 1 {
		t.Fatalf("recovered %v", rec.Entries)
	}
}

func TestClosed(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever})
	closeT(t, l)
	closeT(t, l) // idempotent
	if err := l.AppendWindow(nil); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.WriteSnapshot(0, maps.All(map[string]geom.Point{})); err != ErrClosed {
		t.Fatalf("snapshot after close: %v", err)
	}
}

func TestParseFsync(t *testing.T) {
	for _, tc := range []struct {
		in     string
		policy FsyncPolicy
		iv     time.Duration
		ok     bool
	}{
		{"always", FsyncAlways, 0, true},
		{"never", FsyncNever, 0, true},
		{"100ms", FsyncInterval, 100 * time.Millisecond, true},
		{"2s", FsyncInterval, 2 * time.Second, true},
		{"0s", 0, 0, false},
		{"-1s", 0, 0, false},
		{"sometimes", 0, 0, false},
		{"", 0, 0, false},
	} {
		p, iv, err := ParseFsync(tc.in)
		if (err == nil) != tc.ok || (tc.ok && (p != tc.policy || iv != tc.iv)) {
			t.Errorf("ParseFsync(%q) = %v, %v, %v; want %v, %v, ok=%t", tc.in, p, iv, err, tc.policy, tc.iv, tc.ok)
		}
	}
}

// TestOversizedWindowFailStop pins that a window too large to journal
// poisons the Log like any other append failure: its ops can never
// reach the log, so later appends must be refused — otherwise seqs are
// reassigned over the gap and replay cannot detect the missing window.
func TestOversizedWindowFailStop(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever, MaxRecordBytes: 32})
	defer closeT(t, l)
	big := []Op[string]{{ID: strings.Repeat("x", 64), P: geom.Pt2(1, 1)}}
	if err := l.AppendWindow(big); err == nil {
		t.Fatal("oversized window accepted")
	}
	if err := l.AppendWindow([]Op[string]{{ID: "a", P: geom.Pt2(1, 1)}}); err == nil {
		t.Fatal("append after an unjournalable window succeeded: silent seq gap")
	}
	if got := l.Stats().Errors; got == 0 {
		t.Fatal("oversized window not counted in Errors")
	}
}

// TestWALAppendZeroAllocWarm pins the acceptance criterion that the WAL
// adds no per-op allocations beyond its (persistent) record encode
// buffer: a warm AppendWindow allocates nothing.
func TestWALAppendZeroAllocWarm(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncNever})
	defer closeT(t, l)
	ops := []Op[string]{
		{ID: "obj-0000001", P: geom.Pt2(123456, 789012)},
		{ID: "obj-0000002", P: geom.Pt2(345678, 901234)},
		{ID: "obj-0000003", Del: true},
	}
	if err := l.AppendWindow(ops); err != nil { // warm the encode buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := l.AppendWindow(ops); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm AppendWindow allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkAppendWindow(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncNever, FsyncAlways} {
		b.Run(policy.String(), func(b *testing.B) {
			l, _, err := Open[string](b.TempDir(), StringCodec{}, Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			ops := make([]Op[string], 64)
			for i := range ops {
				ops[i] = Op[string]{ID: "obj-0000000", P: geom.Pt2(int64(i)*1000, int64(i)*2000)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.AppendWindow(ops); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestLastSeq covers the replication resume handshake's source of
// truth: zero on a log that has never held a window, advancing with
// appends, and surviving recovery.
func TestLastSeq(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if got := l.LastSeq(); got != 0 {
		t.Fatalf("fresh LastSeq = %d, want 0", got)
	}
	for i := 1; i <= 3; i++ {
		if err := l.AppendWindow([]Op[string]{{ID: "a", P: geom.Pt2(int64(i), 0)}}); err != nil {
			t.Fatal(err)
		}
		if got := l.LastSeq(); got != uint64(i) {
			t.Fatalf("LastSeq after %d appends = %d", i, got)
		}
	}
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if l2.LastSeq() != 3 || rec.Seq != 3 {
		t.Fatalf("recovered LastSeq = %d (rec.Seq %d), want 3", l2.LastSeq(), rec.Seq)
	}
}

// TestAppendWindowAt checks the follower journaling primitive: windows
// land under the leader's sequence numbers, gaps are allowed (the
// leader's log has them after its own snapshots), regressions are not,
// and recovery resumes from the highest journaled seq.
func TestAppendWindowAt(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	if err := l.AppendWindowAt(7, []Op[string]{{ID: "a", P: geom.Pt2(1, 2)}}); err != nil {
		t.Fatalf("AppendWindowAt(7): %v", err)
	}
	if err := l.AppendWindowAt(12, []Op[string]{{ID: "b", P: geom.Pt2(3, 4)}}); err != nil {
		t.Fatalf("AppendWindowAt(12) across a gap: %v", err)
	}
	for _, seq := range []uint64{12, 5, 0} {
		if err := l.AppendWindowAt(seq, nil); err == nil {
			t.Fatalf("AppendWindowAt(%d) after seq 12 succeeded", seq)
		}
	}
	if got := l.LastSeq(); got != 12 {
		t.Fatalf("LastSeq = %d, want 12", got)
	}
	// Plain AppendWindow continues from the imposed seq.
	if err := l.AppendWindow([]Op[string]{{ID: "c", P: geom.Pt2(5, 6)}}); err != nil {
		t.Fatal(err)
	}
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	defer closeT(t, l2)
	if rec.Seq != 13 || rec.Records != 3 {
		t.Fatalf("recovery after seq-addressed appends: %+v", rec)
	}
	want := map[string]geom.Point{"a": geom.Pt2(1, 2), "b": geom.Pt2(3, 4), "c": geom.Pt2(5, 6)}
	if !maps.Equal(rec.Entries, want) {
		t.Fatalf("recovered %v, want %v", rec.Entries, want)
	}
}

// TestWriteSnapshotAt covers follower bootstrap: installing a
// leader-provided snapshot may move the local sequence backwards
// (re-bootstrapping from a wiped leader), all the way to zero for an
// empty leader — no snapshot, empty log — which must succeed and leave
// the follower resuming from seq 0.
func TestWriteSnapshotAt(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.AppendWindow([]Op[string]{{ID: "old", P: geom.Pt2(int64(i), 0)}}); err != nil {
			t.Fatal(err)
		}
	}
	// Regress to a lower seq with different state, as a re-bootstrap does.
	state := map[string]geom.Point{"x": geom.Pt2(9, 9)}
	if err := l.WriteSnapshotAt(2, len(state), maps.All(state)); err != nil {
		t.Fatalf("WriteSnapshotAt(2): %v", err)
	}
	if got := l.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after regression = %d, want 2", got)
	}
	if err := l.AppendWindowAt(3, []Op[string]{{ID: "y", P: geom.Pt2(1, 1)}}); err != nil {
		t.Fatalf("AppendWindowAt(3) after regression: %v", err)
	}
	closeT(t, l)
	l2, rec := openT(t, dir, Options{})
	if rec.Seq != 3 || rec.SnapshotSeq != 2 || rec.Records != 1 {
		t.Fatalf("recovery after regression: %+v", rec)
	}
	want := map[string]geom.Point{"x": geom.Pt2(9, 9), "y": geom.Pt2(1, 1)}
	if !maps.Equal(rec.Entries, want) {
		t.Fatalf("recovered %v, want %v", rec.Entries, want)
	}

	// Empty-leader bootstrap: snapshot of nothing at seq 0.
	if err := l2.WriteSnapshotAt(0, 0, maps.All(map[string]geom.Point{})); err != nil {
		t.Fatalf("WriteSnapshotAt(0, empty): %v", err)
	}
	if got := l2.LastSeq(); got != 0 {
		t.Fatalf("LastSeq after empty bootstrap = %d, want 0", got)
	}
	closeT(t, l2)
	l3, rec3 := openT(t, dir, Options{})
	defer closeT(t, l3)
	if len(rec3.Entries) != 0 || rec3.Seq != 0 {
		t.Fatalf("recovery after empty bootstrap: %+v", rec3)
	}
	if err := l3.AppendWindowAt(1, []Op[string]{{ID: "z", P: geom.Pt2(2, 2)}}); err != nil {
		t.Fatalf("AppendWindowAt(1) from empty bootstrap: %v", err)
	}
}

// TestWindowPayloadRoundTrip pins the exported payload codec to the
// on-disk record format the replication stream reuses.
func TestWindowPayloadRoundTrip(t *testing.T) {
	ops := []Op[string]{
		{ID: "a", P: geom.Pt2(1, -2)},
		{ID: "b", Del: true},
	}
	payload := EncodeWindowPayload(nil, StringCodec{}, 42, ops)
	seq, got, err := DecodeWindowPayload(payload, StringCodec{}, nil)
	if err != nil {
		t.Fatalf("DecodeWindowPayload: %v", err)
	}
	if seq != 42 || len(got) != 2 || got[0] != ops[0] || got[1] != ops[1] {
		t.Fatalf("round trip: seq %d ops %v", seq, got)
	}
	if _, _, err := DecodeWindowPayload(payload[:len(payload)-1], StringCodec{}, nil); err == nil {
		t.Fatal("truncated payload decoded without error")
	}
}

// TestTermPersistence proves SetTerm survives a snapshot + restart (the
// promotion durability contract) and that a v1-era snapshot without a
// term recovers as term 0.
func TestTermPersistence(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{Fsync: FsyncAlways})
	if got := l.Term(); got != 0 {
		t.Fatalf("fresh log term = %d, want 0", got)
	}
	if err := l.AppendWindow([]Op[string]{{ID: "a", P: geom.Pt2(1, 2)}}); err != nil {
		t.Fatalf("AppendWindow: %v", err)
	}
	l.SetTerm(7)
	state := map[string]geom.Point{"a": geom.Pt2(1, 2)}
	if err := l.WriteSnapshot(len(state), maps.All(state)); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// Windows appended after the snapshot must not disturb the term.
	if err := l.AppendWindow([]Op[string]{{ID: "b", P: geom.Pt2(3, 4)}}); err != nil {
		t.Fatalf("AppendWindow: %v", err)
	}
	if got := l.Stats().Term; got != 7 {
		t.Fatalf("Stats().Term = %d, want 7", got)
	}
	closeT(t, l)

	l2, rec := openT(t, dir, Options{})
	if rec.Term != 7 || l2.Term() != 7 {
		t.Fatalf("recovered term %d / %d, want 7", rec.Term, l2.Term())
	}
	if len(rec.Entries) != 2 || rec.Seq != 2 {
		t.Fatalf("recovery state: %+v", rec)
	}
	closeT(t, l2)
}

// TestTermV1Snapshot builds a v1 snapshot by hand (no term field) and
// checks recovery reads it with term 0 — old WAL directories keep
// working across the format bump.
func TestTermV1Snapshot(t *testing.T) {
	dir := t.TempDir()
	var body []byte
	body = binary.AppendUvarint(body, 3) // seq
	body = binary.AppendUvarint(body, 1) // count
	body = StringCodec{}.AppendID(body, "a")
	for d := 0; d < geom.MaxDims; d++ {
		body = binary.AppendVarint(body, int64(d+1))
	}
	snap := append([]byte("PSISNP1\n"), body...)
	snap = binary.LittleEndian.AppendUint32(snap, crc32.ChecksumIEEE(body))
	if err := os.WriteFile(filepath.Join(dir, "wal.snap"), snap, 0o644); err != nil {
		t.Fatal(err)
	}
	l, rec := openT(t, dir, Options{})
	defer closeT(t, l)
	if rec.Term != 0 || rec.Seq != 3 || rec.SnapshotObjects != 1 {
		t.Fatalf("v1 snapshot recovery: %+v", rec)
	}
	if p, ok := rec.Entries["a"]; !ok || p != geom.Pt3(1, 2, 3) {
		t.Fatalf("v1 snapshot entries: %v", rec.Entries)
	}
}
