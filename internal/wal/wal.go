// Package wal is the durability layer under psi.Collection: an
// append-only write-ahead log of committed flush windows, plus periodic
// full snapshots that truncate it. The Collection's netted per-flush
// window — last-write-wins per ID, at most one op per object — is
// already an ordered, idempotent replication unit, so the log needs no
// op-level framing of its own: one length-prefixed, CRC32-guarded
// record per committed window, replayed in sequence order at startup.
//
// Files (one generation, in the WAL directory):
//
//	wal.snap  full state at some window seq S: every live (ID, point)
//	wal.log   the windows committed after S, one record each
//
// Recovery (Open) loads the latest valid snapshot, replays the log tail
// with seq > S, and — because a crash can land mid-write — truncates a
// torn or corrupt final record instead of failing: everything before
// the tear is intact by CRC, everything after it was never
// acknowledged under the always-fsync policy. A bad record with a
// valid record after it is not a tear — it is corruption of journaled
// history, and Open fails rather than dropping it. Both files are replaced
// atomically (write-temp, fsync, rename, fsync directory), so a crash
// during a snapshot or log rotation leaves the previous generation
// untouched.
//
// Durability is governed by the fsync policy: FsyncAlways syncs every
// appended window before the append returns (acknowledged == durable),
// FsyncInterval syncs on a timer (bounded loss window), FsyncNever
// leaves syncing to the kernel (contents survive process crashes but
// not host crashes). docs/durability.md spells out the guarantee per
// policy; cmd/psid exposes the choice as -fsync.
package wal

import (
	"errors"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/geom"
	"repro/internal/obs"
)

// FsyncPolicy selects when appended windows are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs inside every AppendWindow: when the append
	// returns, the window is on disk. The only policy under which an
	// acknowledged write is guaranteed to survive power loss.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval marks appended windows dirty and syncs on a timer
	// (Options.Interval): at most one interval of acknowledged writes
	// can be lost to a host crash. Process crashes lose nothing — the
	// data is already in the page cache.
	FsyncInterval
	// FsyncNever never calls fsync on append (Close still syncs).
	// Survives process crashes, not host crashes.
	FsyncNever
)

// String returns the policy's -fsync spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsync parses a -fsync flag value: "always", "never", or a
// duration ("100ms") selecting FsyncInterval at that cadence.
func ParseFsync(s string) (FsyncPolicy, time.Duration, error) {
	switch s {
	case "always":
		return FsyncAlways, 0, nil
	case "never":
		return FsyncNever, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("wal: bad fsync policy %q (want always, never, or a positive duration)", s)
	}
	return FsyncInterval, d, nil
}

// DefaultInterval is the FsyncInterval cadence when Options.Interval is
// unset.
const DefaultInterval = 100 * time.Millisecond

// DefaultMaxRecordBytes bounds one record's payload on both ends: an
// encoder refusing larger windows and a decoder treating larger length
// prefixes as corruption. Far above any real window (a window op is
// tens of bytes).
const DefaultMaxRecordBytes = 1 << 30

// maxRetainedBuf caps the append scratch kept between windows: one
// enormous window must not pin its encode buffer forever.
const maxRetainedBuf = 1 << 22

// ErrClosed is returned by appends and snapshots after Close.
var ErrClosed = errors.New("wal: closed")

// Options tunes a Log. The zero value is usable: FsyncAlways, default
// interval and record bound, no metrics.
type Options struct {
	// Fsync is the append durability policy (see the policy constants).
	Fsync FsyncPolicy
	// Interval is the FsyncInterval cadence; <= 0 selects
	// DefaultInterval. Ignored by the other policies.
	Interval time.Duration
	// MaxRecordBytes bounds one record payload (encode and decode);
	// <= 0 selects DefaultMaxRecordBytes.
	MaxRecordBytes int
	// Obs, when set, registers the WAL series (psi_wal_*: append and
	// fsync counters, log size and seq gauges, fsync latency
	// histogram). Recording is atomics only — appends stay
	// allocation-free with a live registry.
	Obs *obs.Registry
	// OnError receives errors from the background fsync loop (the
	// FsyncInterval policy's timer goroutine — there is no caller to
	// return them to). Synchronous append/snapshot errors are returned
	// to the caller and not reported here. The callback runs on the
	// loop goroutine and must not call back into the Log.
	OnError func(error)
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = DefaultInterval
	}
	if o.MaxRecordBytes <= 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	return o
}

// Log is one open WAL generation: the append handle on wal.log plus the
// snapshot machinery. Create one with Open; all methods are safe for
// concurrent use (appends, snapshots, and the fsync timer serialize on
// one mutex — the Collection already serializes appends under its flush
// lock, so the mutex is uncontended in practice).
type Log[ID comparable] struct {
	dir   string
	codec Codec[ID]
	opts  Options

	mu     sync.Mutex // guards f, buf, err, closed, and file mutation order
	f      *os.File
	buf    []byte
	err    error // sticky: after a failed write/fsync, durability is gone
	closed bool

	seq      atomic.Uint64 // last appended window seq
	snapSeq  atomic.Uint64 // window seq covered by the durable snapshot
	term     atomic.Uint64 // leader term journaled with the next snapshot
	logBytes atomic.Int64

	appends   atomic.Uint64
	bytes     atomic.Uint64
	fsyncs    atomic.Uint64
	snapshots atomic.Uint64
	errors    atomic.Uint64
	dirty     atomic.Bool // unsynced appends (FsyncInterval)

	fsyncDur *obs.Hist // nil without a registry

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

const (
	logName  = "wal.log"
	snapName = "wal.snap"
)

// Open opens (creating if absent) the WAL in dir and runs recovery:
// the returned Recovery holds the surviving state — snapshot plus
// replayed log tail, with any torn final record truncated — and the
// Log is positioned to append the next window. A hard error (an
// unreadable directory, a corrupt snapshot, a log with a foreign
// header) fails Open rather than silently serving an empty dataset.
func Open[ID comparable](dir string, codec Codec[ID], opts Options) (*Log[ID], *Recovery[ID], error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	rec := &Recovery[ID]{Entries: make(map[ID]geom.Point)}
	if err := readSnapshot(filepath.Join(dir, snapName), codec, rec); err != nil {
		return nil, nil, err
	}
	logPath := filepath.Join(dir, logName)
	if err := replayLog(logPath, codec, opts.MaxRecordBytes, rec); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	size, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log[ID]{dir: dir, codec: codec, opts: opts, f: f, stop: make(chan struct{})}
	l.seq.Store(rec.Seq)
	l.snapSeq.Store(rec.SnapshotSeq)
	l.term.Store(rec.Term)
	l.logBytes.Store(size)
	if opts.Obs != nil {
		l.registerMetrics(opts.Obs)
	}
	if opts.Fsync == FsyncInterval {
		l.wg.Add(1)
		go l.fsyncLoop()
	}
	return l, rec, nil
}

// LastSeq returns the sequence number of the last appended (or
// recovered) window — the resume point a replication follower hands the
// leader in its FOLLOW handshake. Zero means the log has never held a
// window: a follower there bootstraps from the beginning without error.
func (l *Log[ID]) LastSeq() uint64 { return l.seq.Load() }

// Term returns the leader term this log carries: the value recovered
// from the snapshot at Open, as updated by SetTerm since.
func (l *Log[ID]) Term() uint64 { return l.term.Load() }

// SetTerm records a new leader term. The term is journaled with the
// next snapshot (v2 format), so callers that need the term durable —
// promotion must not acknowledge before its term can survive a restart
// — follow SetTerm with a snapshot write.
func (l *Log[ID]) SetTerm(t uint64) { l.term.Store(t) }

// AppendWindow appends one committed flush window — the Collection's
// netted ops, at most one per ID — as a single framed record, and (under
// FsyncAlways) syncs it to disk before returning. Windows are assigned
// consecutive sequence numbers; replay applies them in order, so the
// caller must append windows in commit order (the Collection's flush
// lock already guarantees this). The ops slice is not retained.
func (l *Log[ID]) AppendWindow(ops []Op[ID]) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(l.seq.Load()+1, ops)
}

// AppendWindowAt is AppendWindow with a caller-assigned sequence number:
// a replication follower journals each applied leader window under the
// leader's seq, so its recovered LastSeq is directly the resume point
// for the next FOLLOW handshake. seq must exceed LastSeq — replay
// requires strictly increasing seqs (gaps are legal in the file; the
// follower's stream protocol rejects them earlier).
func (l *Log[ID]) AppendWindowAt(seq uint64, ops []Op[ID]) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.seq.Load() {
		return fmt.Errorf("wal: AppendWindowAt seq %d not above last seq %d", seq, l.seq.Load())
	}
	return l.appendLocked(seq, ops)
}

// appendLocked writes one framed window record under mu.
func (l *Log[ID]) appendLocked(seq uint64, ops []Op[ID]) error {
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		// A previous write or fsync failed: the tail of the log is in an
		// unknown state, so no further append may claim durability.
		return l.err
	}
	buf := l.buf
	if cap(buf) < frameLen {
		buf = make([]byte, frameLen)
	} else {
		buf = buf[:frameLen] // putFrame overwrites all 8 bytes below
	}
	buf = encodeWindow(buf, l.codec, seq, ops)
	payload := buf[frameLen:]
	if len(payload) > l.opts.MaxRecordBytes {
		// Sticky like any other append failure: this window's ops will
		// never reach the log, so letting later windows append would
		// leave a silent gap (seqs are reassigned, so replay could not
		// detect the missing window).
		l.fail(fmt.Errorf("window of %d ops encodes to %d bytes, above the %d-byte record bound",
			len(ops), len(payload), l.opts.MaxRecordBytes))
		return l.err
	}
	putFrame(buf[:frameLen], payload)
	if _, err := l.f.Write(buf); err != nil {
		l.fail(err)
		return l.err
	}
	if cap(buf) <= maxRetainedBuf {
		l.buf = buf[:0]
	} else {
		l.buf = nil
	}
	l.seq.Store(seq)
	l.logBytes.Add(int64(len(buf)))
	l.appends.Add(1)
	l.bytes.Add(uint64(len(buf)))
	switch l.opts.Fsync {
	case FsyncAlways:
		if err := l.syncLocked(); err != nil {
			return err
		}
	case FsyncInterval:
		l.dirty.Store(true)
	}
	return nil
}

// Sync forces appended windows to disk regardless of policy (graceful
// shutdown uses it so even FsyncNever loses nothing on a clean exit).
func (l *Log[ID]) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	return l.syncLocked()
}

// syncLocked fsyncs the log file and records the latency (mu held).
func (l *Log[ID]) syncLocked() error {
	t0 := time.Now()
	if err := l.f.Sync(); err != nil {
		l.fail(err)
		return l.err
	}
	l.fsyncs.Add(1)
	l.dirty.Store(false)
	if l.fsyncDur != nil {
		l.fsyncDur.Record(time.Since(t0))
	}
	return nil
}

// fail records a write/fsync failure: the first error sticks (every
// later append returns it) so an acknowledgement can never be issued
// over a log whose tail state is unknown.
func (l *Log[ID]) fail(err error) {
	l.errors.Add(1)
	if l.err == nil {
		l.err = fmt.Errorf("wal: %w", err)
	}
}

func (l *Log[ID]) fsyncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if !l.dirty.Load() {
				continue
			}
			l.mu.Lock()
			var err error
			if !l.closed && l.err == nil {
				err = l.syncLocked()
			}
			l.mu.Unlock()
			if err != nil && l.opts.OnError != nil {
				l.opts.OnError(err)
			}
		case <-l.stop:
			return
		}
	}
}

// WriteSnapshot atomically replaces the snapshot with the given state —
// n entries pushed by the iterator — and truncates the log by rotating
// in a fresh one, bounding replay time and disk use. The state must be
// exactly the fold of every appended window (Collection.Checkpoint
// provides it under the flush lock, so no window can commit mid-
// snapshot). A crash at any point leaves a recoverable pair: both
// replacements are write-temp, fsync, rename.
func (l *Log[ID]) WriteSnapshot(n int, entries iter.Seq2[ID, geom.Point]) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(l.seq.Load(), n, entries)
}

// WriteSnapshotAt is WriteSnapshot with a caller-assigned sequence
// number, and it resets the log's seq to it — even backwards. It exists
// for one caller: a replication follower installing a leader-sent
// bootstrap snapshot, whose seq belongs to the leader's history, not
// this log's (a follower rejoining a rebuilt leader can legitimately
// regress, including to seq 0 for an empty leader). The rotation makes
// the regression safe: the log is empty afterwards, so recovery sees
// only the snapshot seq and records above it.
func (l *Log[ID]) WriteSnapshotAt(seq uint64, n int, entries iter.Seq2[ID, geom.Point]) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(seq, n, entries)
}

// snapshotLocked replaces the snapshot at seq and rotates the log (mu
// held). On success the log's seq is exactly seq.
func (l *Log[ID]) snapshotLocked(seq uint64, n int, entries iter.Seq2[ID, geom.Point]) error {
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := writeSnapshotFile(filepath.Join(l.dir, snapName), l.codec, l.term.Load(), seq, n, entries); err != nil {
		l.fail(err)
		return l.err
	}
	// The snapshot at seq is durable: every logged window is now
	// redundant, so rotate in an empty log. A crash before the rotation
	// rename replays the old log over the snapshot — records with
	// seq <= snapSeq are skipped, so the overlap is harmless.
	nf, err := createLogFile(filepath.Join(l.dir, logName))
	if err != nil {
		l.fail(err)
		return l.err
	}
	l.f.Close()
	l.f = nf
	l.logBytes.Store(magicLen)
	l.seq.Store(seq) // no-op for WriteSnapshot; the reset WriteSnapshotAt promises
	l.snapSeq.Store(seq)
	l.snapshots.Add(1)
	return nil
}

// AppendsSinceSnapshot returns the number of windows appended since the
// last durable snapshot — zero means a snapshot would be a no-op, which
// the service's timer loop uses to skip idle rewrites.
func (l *Log[ID]) AppendsSinceSnapshot() uint64 {
	return l.seq.Load() - l.snapSeq.Load()
}

// Close syncs and closes the log (stopping the fsync timer first).
// Idempotent; appends after Close return ErrClosed.
func (l *Log[ID]) Close() error {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if l.err == nil {
		err = l.f.Sync()
		if err == nil {
			l.fsyncs.Add(1)
		}
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats is a point-in-time snapshot of the log's counters, assembled
// from atomics (safe to sample during an append or snapshot).
type Stats struct {
	Seq           uint64 // last appended window seq
	SnapshotSeq   uint64 // window seq the durable snapshot covers
	Term          uint64 // leader term (journaled with snapshots)
	LogBytes      int64  // current wal.log size
	Appends       uint64 // windows appended this process
	AppendedBytes uint64 // record bytes appended this process
	Fsyncs        uint64
	Snapshots     uint64 // snapshots written this process
	Errors        uint64 // write/fsync/snapshot failures
	Policy        string
}

// Stats returns the current counters.
func (l *Log[ID]) Stats() Stats {
	return Stats{
		Seq:           l.seq.Load(),
		SnapshotSeq:   l.snapSeq.Load(),
		Term:          l.term.Load(),
		LogBytes:      l.logBytes.Load(),
		Appends:       l.appends.Load(),
		AppendedBytes: l.bytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Snapshots:     l.snapshots.Load(),
		Errors:        l.errors.Load(),
		Policy:        l.opts.Fsync.String(),
	}
}

// registerMetrics exposes the WAL series on reg. Everything reads the
// Log's own atomics; nothing here runs on the append path.
func (l *Log[ID]) registerMetrics(reg *obs.Registry) {
	layer := obs.Label{Key: "layer", Value: "wal"}
	reg.CounterFunc("psi_wal_appends_total",
		"Committed flush windows appended to the write-ahead log.",
		l.appends.Load, layer)
	reg.CounterFunc("psi_wal_bytes_total",
		"Record bytes appended to the write-ahead log.",
		l.bytes.Load, layer)
	reg.CounterFunc("psi_wal_fsync_total",
		"fsync calls issued by the write-ahead log.",
		l.fsyncs.Load, layer)
	reg.CounterFunc("psi_wal_snapshots_total",
		"Full snapshots written (each truncates the log).",
		l.snapshots.Load, layer)
	reg.CounterFunc("psi_wal_errors_total",
		"Write, fsync, and snapshot failures (the first one sticks).",
		l.errors.Load, layer)
	reg.GaugeFunc("psi_wal_seq",
		"Last appended window sequence number.",
		func() float64 { return float64(l.seq.Load()) }, layer)
	reg.GaugeFunc("psi_wal_log_bytes",
		"Current size of wal.log (falls to the header at each snapshot).",
		func() float64 { return float64(l.logBytes.Load()) }, layer)
	l.fsyncDur = reg.Histogram("psi_wal_fsync_duration_ns",
		"fsync latency in nanoseconds.", layer)
}
