package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/geom"
)

// On-disk format. Both files open with an 8-byte magic so a foreign or
// misplaced file fails loudly instead of replaying as garbage.
//
// wal.log:
//
//	"PSIWAL1\n"
//	record*        where record = u32le payloadLen | u32le crc32(payload) | payload
//
// A record payload is one committed window:
//
//	uvarint seq | uvarint nOps | op*
//	op = flags byte (bit0: delete) | codec-encoded ID | 3 × varint coord (omitted for deletes)
//
// Coordinates are signed varints (zigzag) over all geom.MaxDims slots —
// unused dimensions are zero by the library-wide point convention and
// cost one byte each. CRC is IEEE CRC-32 over the payload only, so a
// torn length prefix and a torn payload fail the same way: checksum
// mismatch or short read, both handled by truncation at recovery.
//
// wal.snap:
//
//	"PSISNP2\n"
//	uvarint term | uvarint seq | uvarint n | n × (codec-encoded ID | 3 × varint coord)
//	u32le crc32(everything after the magic)
//
// The v1 snapshot magic ("PSISNP1\n") is still read — its body starts
// directly at the seq, and recovery assigns it term 0. Writers always
// emit v2: the leader term is journaled with every snapshot, which is
// how a promotion's new term survives a restart.
//
// The snapshot is replaced atomically (write-temp, fsync, rename), so a
// reader never sees a partial one; a checksum mismatch therefore means
// bit rot, which fails Open rather than being silently truncated.
const (
	logMagic    = "PSIWAL1\n"
	snapMagicV1 = "PSISNP1\n"
	snapMagic   = "PSISNP2\n"
	magicLen    = 8
	frameLen    = 8 // u32le payload length + u32le payload CRC
)

// Op is one entry of a committed window: a last-write-wins Set of ID to
// P, or (Del) a removal. The window invariant — at most one op per ID,
// produced by the Collection's netting — is what makes replay exact.
type Op[ID comparable] struct {
	ID  ID
	P   geom.Point
	Del bool
}

// Codec encodes IDs for the wire. Implementations must be stateless
// and self-delimiting: DecodeID reads exactly the bytes AppendID wrote.
type Codec[ID comparable] interface {
	// AppendID appends id's encoding to dst and returns the extended
	// slice (the dst-append contract used across the repo).
	AppendID(dst []byte, id ID) []byte
	// DecodeID decodes one ID from the front of src, returning the ID
	// and the bytes consumed. It must error (never panic) on any
	// malformed input — recovery feeds it CRC-valid but potentially
	// hostile bytes, and the fuzz target feeds it worse.
	DecodeID(src []byte) (id ID, n int, err error)
}

// StringCodec is the Codec for string IDs (the psid wire protocol's ID
// type): uvarint length followed by the raw bytes.
type StringCodec struct{}

// AppendID implements Codec.
func (StringCodec) AppendID(dst []byte, id string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(id)))
	return append(dst, id...)
}

// DecodeID implements Codec.
func (StringCodec) DecodeID(src []byte) (string, int, error) {
	ln, n := binary.Uvarint(src)
	if n <= 0 {
		return "", 0, fmt.Errorf("wal: truncated ID length")
	}
	if ln > uint64(len(src)-n) {
		return "", 0, fmt.Errorf("wal: ID length %d overruns the record", ln)
	}
	return string(src[n : n+int(ln)]), n + int(ln), nil
}

// EncodeWindowPayload appends the record-payload encoding of one window
// (uvarint seq, uvarint op count, then the ops) to dst and returns the
// extended slice. It is the exact bytes AppendWindow frames into
// wal.log, exported so the replication layer (internal/repl) ships the
// same encoding over the wire that the log journals to disk — one
// format, one fuzz surface.
func EncodeWindowPayload[ID comparable](dst []byte, codec Codec[ID], seq uint64, ops []Op[ID]) []byte {
	return encodeWindow(dst, codec, seq, ops)
}

// DecodeWindowPayload decodes one window payload produced by
// EncodeWindowPayload (or read CRC-valid from wal.log), appending the
// ops to dst. It errors — never panics — on any malformed input; a
// zero-op window is valid and decodes to no ops.
func DecodeWindowPayload[ID comparable](payload []byte, codec Codec[ID], dst []Op[ID]) (seq uint64, ops []Op[ID], err error) {
	return decodeWindow(payload, codec, dst)
}

// putFrame fills the 8-byte record header for payload.
func putFrame(hdr, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
}

// encodeWindow appends one window payload to dst.
func encodeWindow[ID comparable](dst []byte, codec Codec[ID], seq uint64, ops []Op[ID]) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		o := &ops[i]
		var flags byte
		if o.Del {
			flags = 1
		}
		dst = append(dst, flags)
		dst = codec.AppendID(dst, o.ID)
		if !o.Del {
			for d := 0; d < geom.MaxDims; d++ {
				dst = binary.AppendVarint(dst, o.P[d])
			}
		}
	}
	return dst
}

// decodeWindow decodes one CRC-validated window payload into dst
// (reused across records during replay). Every malformed shape —
// truncated varints, overrunning IDs, unknown flag bits, trailing
// bytes — is an error; the caller treats it as corruption and
// truncates. It never panics: the payload passed its checksum, but the
// checksum only proves the bytes are what was written, not that a
// well-formed writer wrote them.
func decodeWindow[ID comparable](payload []byte, codec Codec[ID], dst []Op[ID]) (seq uint64, ops []Op[ID], err error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, dst, fmt.Errorf("wal: truncated window seq")
	}
	rest := payload[n:]
	nOps, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, dst, fmt.Errorf("wal: truncated op count")
	}
	rest = rest[n:]
	if nOps > uint64(len(rest)) { // every op costs >= 1 byte: cheap bound before allocating
		return 0, dst, fmt.Errorf("wal: op count %d overruns the record", nOps)
	}
	ops = dst
	for i := uint64(0); i < nOps; i++ {
		if len(rest) == 0 {
			return 0, dst, fmt.Errorf("wal: truncated op %d", i)
		}
		flags := rest[0]
		if flags > 1 {
			return 0, dst, fmt.Errorf("wal: unknown op flags %#x", flags)
		}
		rest = rest[1:]
		var o Op[ID]
		o.Del = flags == 1
		var idLen int
		o.ID, idLen, err = codec.DecodeID(rest)
		if err != nil {
			return 0, dst, err
		}
		rest = rest[idLen:]
		if !o.Del {
			for d := 0; d < geom.MaxDims; d++ {
				v, n := binary.Varint(rest)
				if n <= 0 {
					return 0, dst, fmt.Errorf("wal: truncated coordinate")
				}
				o.P[d] = v
				rest = rest[n:]
			}
		}
		ops = append(ops, o)
	}
	if len(rest) != 0 {
		return 0, dst, fmt.Errorf("wal: %d trailing bytes after %d ops", len(rest), nOps)
	}
	return seq, ops, nil
}
