package wal

import (
	"maps"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

// FuzzWALReplay throws arbitrary bytes at the log decoder as a wal.log
// file. The contract under attack: Open never panics; whatever it
// salvages is stable (a second recovery finds the same state and
// truncates nothing further — recovery-by-truncation converges in one
// pass); and the recovered log accepts appends. Corrupt, torn, and
// truncated tails all land here; seeds cover the interesting shapes
// (valid logs, tears at every boundary class, CRC flips, hostile
// varints) and live in testdata/fuzz committed alongside the test.
func FuzzWALReplay(f *testing.F) {
	frame := func(seq uint64, ops []Op[string]) []byte {
		payload := encodeWindow(nil, StringCodec{}, seq, ops)
		rec := make([]byte, frameLen, frameLen+len(payload))
		rec = append(rec, payload...)
		putFrame(rec[:frameLen], rec[frameLen:])
		return rec
	}
	valid := append([]byte(logMagic),
		frame(1, []Op[string]{{ID: "a", P: geom.Pt2(10, 20)}, {ID: "b", P: geom.Pt3(-1, 1<<40, 7)}})...)
	valid = append(valid, frame(2, []Op[string]{{ID: "a", Del: true}})...)
	f.Add([]byte{})
	f.Add([]byte(logMagic))
	f.Add(valid)
	f.Add(valid[:len(valid)-3])          // torn mid-record
	f.Add(valid[:magicLen+4])            // torn mid-header
	f.Add(append(valid[:0:0], valid...)) // corrupted below
	corrupt := append([]byte{}, valid...)
	corrupt[magicLen+frameLen+1] ^= 0x80
	f.Add(corrupt)
	f.Add([]byte("PSIWAL1\n\xff\xff\xff\xff\xff\xff\xff\xff")) // absurd length prefix
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, logName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open[string](dir, StringCodec{}, Options{Fsync: FsyncNever})
		if err != nil {
			return // rejected outright (bad header, I/O): fine, just no panic
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		l2, rec2, err := Open[string](dir, StringCodec{}, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("second Open after recovery: %v", err)
		}
		defer l2.Close()
		if rec2.TruncatedBytes != 0 {
			t.Fatalf("recovery did not converge: second pass truncated %d more bytes", rec2.TruncatedBytes)
		}
		if rec2.Seq != rec.Seq || rec2.Records != rec.Records || !maps.Equal(rec.Entries, rec2.Entries) {
			t.Fatalf("recovery unstable: first %+v, second %+v", rec, rec2)
		}
		// The truncated log must be append-clean, and the append must
		// survive yet another recovery.
		if err := l2.AppendWindow([]Op[string]{{ID: "post", P: geom.Pt2(1, 2)}}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		_, rec3, err := Open[string](dir, StringCodec{}, Options{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("Open after post-recovery append: %v", err)
		}
		if p, ok := rec3.Entries["post"]; !ok || p != geom.Pt2(1, 2) {
			t.Fatalf("post-recovery append lost: %v", rec3.Entries)
		}
	})
}
