package wal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"iter"
	"os"
	"path/filepath"

	"repro/internal/geom"
)

// Recovery is what Open salvaged from disk: the folded state plus
// enough accounting to log and assert on. Entries is the ready-to-load
// dataset — the snapshot with the replayed log tail already applied.
type Recovery[ID comparable] struct {
	// Entries maps every surviving live ID to its last durable
	// position.
	Entries map[ID]geom.Point
	// Seq is the highest recovered window sequence number (appends
	// continue from Seq+1).
	Seq uint64
	// SnapshotSeq and SnapshotObjects describe the loaded snapshot
	// (zero when none existed).
	SnapshotSeq     uint64
	SnapshotObjects int
	// Term is the leader term the snapshot journaled (zero when none
	// existed or the snapshot predates terms). Replication fencing
	// persists the term here so a restarted node rejoins with the term
	// it last held.
	Term uint64
	// Records is the number of valid log records read (including any
	// at or below SnapshotSeq, which are skipped as already folded).
	Records int
	// TruncatedBytes is the size of the torn or corrupt log tail that
	// was cut off, zero for a clean log. A tear is expected after a
	// crash mid-append and is not an error: everything before it is
	// CRC-intact, and under FsyncAlways nothing after it was ever
	// acknowledged.
	TruncatedBytes int64
}

// readSnapshot loads the snapshot file into rec, if one exists. The
// file is rename-atomic, so any validation failure here is bit rot or
// foreign data — a hard error, never a truncation.
func readSnapshot[ID comparable](path string, codec Codec[ID], rec *Recovery[ID]) error {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if len(b) < magicLen+4 {
		return fmt.Errorf("wal: %s: bad snapshot header", path)
	}
	magic := string(b[:magicLen])
	if magic != snapMagic && magic != snapMagicV1 {
		return fmt.Errorf("wal: %s: bad snapshot header", path)
	}
	body, trailer := b[magicLen:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return fmt.Errorf("wal: %s: snapshot checksum mismatch", path)
	}
	if magic == snapMagic { // v2 journals the leader term before the seq
		term, n := binary.Uvarint(body)
		if n <= 0 {
			return fmt.Errorf("wal: %s: truncated snapshot term", path)
		}
		body = body[n:]
		rec.Term = term
	}
	seq, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("wal: %s: truncated snapshot seq", path)
	}
	body = body[n:]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return fmt.Errorf("wal: %s: truncated snapshot count", path)
	}
	body = body[n:]
	for i := uint64(0); i < count; i++ {
		id, idLen, err := codec.DecodeID(body)
		if err != nil {
			return fmt.Errorf("wal: %s: entry %d: %w", path, i, err)
		}
		body = body[idLen:]
		var p geom.Point
		for d := 0; d < geom.MaxDims; d++ {
			v, n := binary.Varint(body)
			if n <= 0 {
				return fmt.Errorf("wal: %s: entry %d: truncated coordinate", path, i)
			}
			p[d] = v
			body = body[n:]
		}
		rec.Entries[id] = p
	}
	if len(body) != 0 {
		return fmt.Errorf("wal: %s: %d trailing bytes after %d entries", path, len(body), count)
	}
	rec.SnapshotSeq = seq
	rec.Seq = seq
	rec.SnapshotObjects = int(count)
	return nil
}

// replayLog folds the log tail into rec, creating the file when absent.
// Records must carry strictly increasing seqs; those at or below the
// snapshot seq are already folded and skipped (a crash between the
// snapshot rename and the log rotation leaves exactly that overlap).
//
// A bad record (short, CRC-mismatched, or malformed) is classified by
// what follows it: if any complete, CRC-valid, well-formed record with
// a higher seq exists later in the file, the damage cannot be a torn
// append — valid data was written after it — so this is real corruption
// and replayLog fails rather than silently dropping journaled windows.
// Otherwise it is the expected crash tear and the file is truncated
// there: recovery keeps the longest valid prefix and the log is again
// append-clean.
func replayLog[ID comparable](path string, codec Codec[ID], maxRec int, rec *Recovery[ID]) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		nf, err := createLogFile(path)
		if err != nil {
			return err
		}
		return nf.Close()
	}
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	size, err := f.Seek(0, 2)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	var magic [magicLen]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || string(magic[:]) != logMagic {
		// The log is created and rotated rename-atomically, so a short
		// or foreign header cannot be a crash artifact of ours: refuse
		// to append over it.
		return fmt.Errorf("wal: %s: bad log header", path)
	}
	good := int64(magicLen) // offset after the last valid record
	var hdr [frameLen]byte
	var payload []byte
	var ops []Op[ID]
	lastSeq := uint64(0)
	torn := false
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break // clean end on a record boundary
			}
			if err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return fmt.Errorf("wal: %w", err)
		}
		ln := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		// Compare widened: on a 32-bit platform int(ln) could wrap
		// negative, slip past the bound, and panic the allocation below.
		if uint64(ln) > uint64(maxRec) {
			torn = true // a garbage length prefix, not a real record
			break
		}
		if cap(payload) < int(ln) {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return fmt.Errorf("wal: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			torn = true
			break
		}
		seq, decoded, err := decodeWindow(payload, codec, ops[:0])
		if err != nil || seq == 0 || seq <= lastSeq {
			torn = true // CRC-valid but malformed or out of order: same treatment
			break
		}
		ops = decoded
		lastSeq = seq
		rec.Records++
		if seq > rec.SnapshotSeq {
			for i := range ops {
				if ops[i].Del {
					delete(rec.Entries, ops[i].ID)
				} else {
					rec.Entries[ops[i].ID] = ops[i].P
				}
			}
			rec.Seq = seq
		}
		good += int64(frameLen) + int64(ln)
	}
	if torn {
		validOff, found, err := scanForValidRecord(f, good, size, codec, maxRec, lastSeq)
		if err != nil {
			return err
		}
		if found {
			return fmt.Errorf("wal: %s: bad record at offset %d followed by a valid record at offset %d — real corruption, not a torn tail; refusing to drop journaled windows",
				path, good, validOff)
		}
		rec.TruncatedBytes = size - good
		if err := f.Truncate(good); err != nil {
			return fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	}
	return nil
}

// scanForValidRecord reports whether any complete, CRC-valid,
// well-formed record with seq > lastSeq starts anywhere in [from, size)
// of f, trying every byte offset (a corrupted length prefix makes the
// real frame boundaries unknowable). The bad record at `from` itself can
// never match: it already failed the length, CRC, or decode check —
// and a seq-regressed record fails the seq > lastSeq bar, so a
// regression with nothing after it stays a truncation, matching replay.
// Zero-filled tails (a crash that allocated blocks without writing
// them) parse as ln=0 with a CRC that trivially matches the empty
// payload, but decodeWindow rejects the empty window, so they never
// count as valid data. The tail is read into memory: it is at most one
// partial record after a real crash, and the corruption path is a rare
// one-time startup cost.
func scanForValidRecord[ID comparable](f *os.File, from, size int64, codec Codec[ID], maxRec int, lastSeq uint64) (int64, bool, error) {
	tail := make([]byte, size-from)
	if _, err := f.ReadAt(tail, from); err != nil {
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	var ops []Op[ID]
	for off := 0; off+frameLen <= len(tail); off++ {
		ln := binary.LittleEndian.Uint32(tail[off : off+4])
		if uint64(ln) > uint64(maxRec) || uint64(ln) > uint64(len(tail)-off-frameLen) {
			continue
		}
		payload := tail[off+frameLen : off+frameLen+int(ln)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tail[off+4:off+8]) {
			continue
		}
		seq, decoded, err := decodeWindow(payload, codec, ops[:0])
		ops = decoded[:0]
		if err != nil || seq <= lastSeq {
			continue
		}
		return from + int64(off), true, nil
	}
	return 0, false, nil
}

// createLogFile creates an empty log (header only) atomically — write
// temp, fsync, rename, fsync directory — and returns a handle
// positioned to append. Rename-atomicity means wal.log, whenever it
// exists, always has a complete header.
func createLogFile(path string) (*os.File, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.WriteString(logMagic); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	// The handle follows the inode through the rename, so it now
	// appends to the freshly installed wal.log.
	return f, nil
}

// writeSnapshotFile streams one snapshot to path atomically, always in
// the v2 format (term before seq).
func writeSnapshotFile[ID comparable](path string, codec Codec[ID], term, seq uint64, n int, entries iter.Seq2[ID, geom.Point]) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds
	bw := bufio.NewWriterSize(f, 1<<20)
	crc := crc32.NewIEEE()
	// Everything after the magic flows through the writer and the
	// checksum together; the trailer seals it.
	mw := io.MultiWriter(bw, crc)
	if _, err := bw.WriteString(snapMagic); err != nil {
		f.Close()
		return err
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, term)
	buf = binary.AppendUvarint(buf, seq)
	buf = binary.AppendUvarint(buf, uint64(n))
	if _, err := mw.Write(buf); err != nil {
		f.Close()
		return err
	}
	count := 0
	werr := error(nil)
	for id, p := range entries {
		buf = codec.AppendID(buf[:0], id)
		for d := 0; d < geom.MaxDims; d++ {
			buf = binary.AppendVarint(buf, p[d])
		}
		if _, werr = mw.Write(buf); werr != nil {
			break
		}
		count++
	}
	if werr != nil {
		f.Close()
		return werr
	}
	if count != n {
		f.Close()
		return fmt.Errorf("wal: snapshot iterator yielded %d entries, want %d", count, n)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := bw.Write(trailer[:]); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("wal: syncing %s: %w", dir, err)
	}
	return nil
}
