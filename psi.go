// Package psi is Ψ-Lib/Go: a parallel spatial index library reproducing
// "Parallel Dynamic Spatial Indexes" (PPoPP 2026). It provides batch-
// dynamic spatial indexes for 2D and 3D integer point data with parallel
// construction, parallel batch insertion/deletion, and k-nearest-neighbor
// and orthogonal range queries:
//
//   - the P-Orth tree — a parallel quadtree/octree built without
//     space-filling curves (the paper's §3);
//   - the SPaC-tree family — parallel R-trees over Morton or Hilbert
//     codes with relaxed in-leaf order (the paper's §4);
//   - the baselines the paper evaluates against: Pkd-tree, Zd-tree,
//     CPAM-Z/CPAM-H, and a sequential quadratic R-tree.
//
// All indexes implement the same Index interface, so they are drop-in
// interchangeable; pick by workload using the guidance in the README
// (distilled from the paper's §5.4):
//
//	u := psi.Universe2D(1_000_000_000)
//	idx := psi.NewSPaCH(2, u) // fastest batch updates
//	idx.Build(points)
//	idx.BatchInsert(more)
//	nn := idx.KNN(q, 10, nil)
//
// Indexes are safe for concurrent queries but not for concurrent
// mutation; batch operations parallelize internally. To serve mutations
// from many goroutines, wrap any index in a Store (NewStore), the
// concurrent batch-coalescing front-end. To scale past one index's batch
// throughput, shard the universe with NewSharded: S regions each own an
// independent index behind their own lock, batch updates fan out across
// shards in parallel, and queries prune to the shards that can
// contribute. To track identified moving objects, wrap any stack in a
// Collection (NewCollection), which nets per-ID moves into batch diffs
// and resolves geometric queries back to IDs. To put the whole stack
// behind a socket, wrap it in a Server (NewServer) — the psid protocol
// served by cmd/psid — and to make acknowledged writes survive
// restarts, give the server a write-ahead log (NewDurableServer).
// ARCHITECTURE.md maps the layers.
package psi

import (
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/logtree"
	"repro/internal/obs"
	"repro/internal/orthtree"
	"repro/internal/pkdtree"
	"repro/internal/rtree"
	"repro/internal/service"
	"repro/internal/sfc"
	"repro/internal/shard"
	"repro/internal/spactree"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/internal/zdtree"
)

// Point is a 2D or 3D point with int64 coordinates. For 2D data the third
// slot must be zero.
type Point = geom.Point

// Box is a closed axis-aligned box.
type Box = geom.Box

// Index is the uniform interface implemented by every spatial index in
// the library. See core.Index for the full contract.
type Index = core.Index

// Options carries tree tuning parameters (leaf wrap φ, balance α,
// skeleton levels λ, universe box). Use DefaultOptions as a base.
type Options = core.Options

// Pt2 builds a 2D point.
func Pt2(x, y int64) Point { return geom.Pt2(x, y) }

// Pt3 builds a 3D point.
func Pt3(x, y, z int64) Point { return geom.Pt3(x, y, z) }

// BoxOf builds the box with corners lo and hi (inclusive).
func BoxOf(lo, hi Point) Box { return geom.BoxOf(lo, hi) }

// Universe2D returns the box [0, side]^2, the conventional root region.
func Universe2D(side int64) Box { return geom.UniverseBox(2, side) }

// Universe3D returns the box [0, side]^3.
func Universe3D(side int64) Box { return geom.UniverseBox(3, side) }

// DefaultOptions returns the paper's parameter choices (§C).
func DefaultOptions(dims int, universe Box) Options {
	return core.DefaultOptions(dims, universe)
}

// replicable wraps a freshly constructed index so it satisfies
// core.Replicator: the retained constructor mints the identically
// configured empty twin that snapshot mode (Store/Collection
// Options.Snapshot, Server default) double-buffers against. Every psi
// constructor goes through this, so any psi-built tree can serve
// epoch-pinned snapshot reads without the caller threading a factory.
func replicable(mk func() Index) Index { return core.WithReplica(mk(), mk) }

// NewPOrth returns a P-Orth tree (this paper, §3): the best
// query/update trade-off on non-skewed data; history-independent, so
// query performance does not degrade under sustained updates.
func NewPOrth(dims int, universe Box) Index {
	return replicable(func() Index { return orthtree.NewDefault(dims, universe) })
}

// NewPOrthOpts returns a P-Orth tree with explicit options.
func NewPOrthOpts(opts Options) Index {
	return replicable(func() Index { return orthtree.New(opts) })
}

// NewSPaCH returns a SPaC-H-tree (this paper, §4, Hilbert curve): the
// paper's recommended default for highly dynamic workloads — the fastest
// construction and batch updates, with the better query speed of the two
// SPaC variants.
func NewSPaCH(dims int, universe Box) Index {
	return replicable(func() Index { return spactree.NewSPaC(sfc.Hilbert, dims, universe) })
}

// NewSPaCZ returns a SPaC-Z-tree (Morton curve): slightly faster updates
// than SPaC-H, slower queries.
func NewSPaCZ(dims int, universe Box) Index {
	return replicable(func() Index { return spactree.NewSPaC(sfc.Morton, dims, universe) })
}

// NewCPAMH returns the CPAM-H baseline: a PaC-tree over Hilbert codes
// with a fully sorted total order (the paper's ablation of the SPaC
// relaxation).
func NewCPAMH(dims int, universe Box) Index {
	return replicable(func() Index { return spactree.NewCPAM(sfc.Hilbert, dims, universe) })
}

// NewCPAMZ returns the CPAM-Z baseline (Morton codes).
func NewCPAMZ(dims int, universe Box) Index {
	return replicable(func() Index { return spactree.NewCPAM(sfc.Morton, dims, universe) })
}

// NewPkd returns the Pkd-tree baseline [43]: strong queries, updates pay
// O(log² n) amortized per point.
func NewPkd(dims int) Index {
	return replicable(func() Index { return pkdtree.NewDefault(dims) })
}

// NewZd returns the Zd-tree baseline [16]: a Morton-sort-based parallel
// orth-tree.
func NewZd(dims int, universe Box) Index {
	return replicable(func() Index { return zdtree.NewDefault(dims, universe) })
}

// NewRTree returns the sequential quadratic R-tree baseline (Boost-R).
func NewRTree(dims int) Index {
	return replicable(func() Index { return rtree.New(dims) })
}

// NewLogTree returns the logarithmic-method kd-tree baseline [62]: cheap
// batch insertion by binary-counter carries, but every query pays an
// O(log n) forest traversal — the trade-off the paper's designs avoid.
func NewLogTree(dims int) Index {
	return replicable(func() Index { return logtree.NewLog(dims) })
}

// NewBHLTree returns the full-rebuild kd-tree baseline [62]: every batch
// update rebuilds the whole tree.
func NewBHLTree(dims int) Index {
	return replicable(func() Index { return logtree.NewBHL(dims) })
}

// NewBruteForce returns the linear-scan reference index (exact, slow;
// intended for testing and cross-validation).
func NewBruteForce(dims int) Index { return core.NewBruteForce(dims) }

// All returns one instance of every parallel index in the library plus
// the sequential R-tree, in the paper's table order. Universe must cover
// all points and fit SFC precision (2D: [0, 2^31); 3D: [0, 2^21)).
func All(dims int, universe Box) []Index {
	return []Index{
		NewPOrth(dims, universe),
		NewZd(dims, universe),
		NewSPaCH(dims, universe),
		NewSPaCZ(dims, universe),
		NewCPAMH(dims, universe),
		NewCPAMZ(dims, universe),
		NewRTree(dims),
		NewPkd(dims),
		NewLogTree(dims),
		NewBHLTree(dims),
	}
}

// ByName constructs an index by its table name ("P-Orth", "Zd-Tree",
// "SPaC-H", "SPaC-Z", "CPAM-H", "CPAM-Z", "Boost-R", "Pkd-Tree",
// "Log-Tree", "BHL-Tree", "BruteForce"); it returns nil for unknown
// names.
func ByName(name string, dims int, universe Box) Index {
	switch name {
	case "P-Orth":
		return NewPOrth(dims, universe)
	case "Zd-Tree":
		return NewZd(dims, universe)
	case "SPaC-H":
		return NewSPaCH(dims, universe)
	case "SPaC-Z":
		return NewSPaCZ(dims, universe)
	case "CPAM-H":
		return NewCPAMH(dims, universe)
	case "CPAM-Z":
		return NewCPAMZ(dims, universe)
	case "Boost-R":
		return NewRTree(dims)
	case "Pkd-Tree":
		return NewPkd(dims)
	case "Log-Tree":
		return NewLogTree(dims)
	case "BHL-Tree":
		return NewBHLTree(dims)
	case "BruteForce":
		return NewBruteForce(dims)
	}
	return nil
}

// Store is a concurrent, batch-coalescing front-end over any Index: many
// goroutines may call Insert/Delete/KNN/RangeCount/RangeList/Flush
// concurrently. Mutations are coalesced into batches and applied through
// the index's parallel batch updates; queries always observe a consistent
// view (never a half-applied batch). See internal/store for the full
// visibility contract.
type Store = store.Store

// StoreOptions tunes a Store: MaxBatch is the coalescing threshold that
// triggers a synchronous flush, FlushInterval (optional) runs a background
// flusher bounding staleness, and Snapshot (optional) supplies the empty
// twin-index factory that switches reads to the epoch-pinned snapshot
// path — queries never wait behind a flush. Every psi constructor returns
// an index whose NewReplica method is such a factory. The zero value is
// usable (locked reads).
type StoreOptions = store.Options

// StoreStats is a snapshot of a Store's lifetime flush counters.
type StoreStats = store.Stats

// NewStore wraps idx for safe concurrent use. The Store takes ownership of
// idx; do not touch it directly afterwards. If opts.FlushInterval is set,
// pair with Close to stop the background flusher.
func NewStore(idx Index, opts StoreOptions) *Store { return store.New(idx, opts) }

// Sharded is a space-partitioned fan-out layer over any index family:
// the universe is split into S compact regions, each owning an
// independent index behind its own lock. Batch updates are partitioned
// by region in parallel and all shard sub-batches apply concurrently
// (mutations of different regions never contend); range queries visit
// only the shards whose region overlaps the box, and KNN expands shards
// best-first by region distance. Unlike the raw indexes, a Sharded is
// safe for fully concurrent use — consistency is per shard; wrap it in a
// Store for whole-batch atomicity across shards (see README "Scaling
// out").
type Sharded = shard.Sharded

// ShardedOptions configures a Sharded index: shard count S, partitioning
// strategy, granularity, static vs Build-rebalanced boundaries, and the
// per-shard index constructor.
type ShardedOptions = shard.Options

// ShardStrategy selects the shard region shape.
type ShardStrategy = shard.Strategy

// Shard partitioning strategies: static grid slabs, Morton (Z-curve)
// ranges, or Hilbert ranges (most compact regions, the default of
// NewSharded).
const (
	ShardGrid    = shard.Grid
	ShardMorton  = shard.MortonRange
	ShardHilbert = shard.HilbertRange
)

// NewSharded partitions the universe into shards regions (Hilbert-range
// partitioning; shards <= 0 selects one per core) and builds one index
// per region with newIndex — e.g. psi.NewSharded(psi.NewSPaCH, 2, u, 0).
// Use NewShardedOpts for full control.
func NewSharded(newIndex func(dims int, universe Box) Index, dims int, universe Box, shards int) *Sharded {
	return shard.New(shard.Options{
		Dims:     dims,
		Universe: universe,
		Shards:   shards,
		Strategy: shard.HilbertRange,
		New:      newIndex,
	})
}

// NewShardedOpts builds a Sharded index with explicit options.
func NewShardedOpts(opts ShardedOptions) *Sharded { return shard.New(opts) }

// Collection is a concurrent ID-keyed moving-object layer over any Index
// (including Sharded and Store-wrapped stacks): it tracks one point per
// live ID, nets each window of Set/Remove calls by last-write-wins per ID
// into a single BatchDiff, and keeps a point→ID reverse multimap
// transactionally consistent with the index so geometric queries resolve
// to object identities. Set/Remove/Get/NearbyIDs/WithinIDs are all safe
// for fully concurrent use; see internal/collection for the visibility
// contract and README "Tracking objects" for stack guidance.
type Collection[ID comparable] = collection.Collection[ID]

// CollectionEntry is one resolved Collection query hit: an object ID and
// its indexed position.
type CollectionEntry[ID comparable] = collection.Entry[ID]

// CollectionOptions tunes a Collection: MaxBatch is the coalescing
// threshold that triggers a synchronous flush, FlushInterval (optional)
// runs a background flusher bounding query staleness, and Snapshot
// (optional) supplies the empty twin-index factory that switches
// Get/NearbyIDs/WithinIDs to the epoch-pinned snapshot path — readers
// never wait behind a flush. The zero value is usable (locked reads).
type CollectionOptions = collection.Options

// CollectionStats is a snapshot of a Collection's lifetime counters.
type CollectionStats = collection.Stats

// NewCollection wraps idx (which must start empty) in a Collection keyed
// by ID. The Collection takes ownership of idx; do not touch it directly
// afterwards. If opts.FlushInterval is set, pair with Close to stop the
// background flusher.
func NewCollection[ID comparable](idx Index, opts CollectionOptions) *Collection[ID] {
	return collection.New[ID](idx, opts)
}

// Server is psid, the network serving layer: it exposes a
// Collection[string] over a newline-delimited JSON command protocol on
// TCP (SET/DEL/GET/NEARBY/WITHIN/STATS/FLUSH, one goroutine per
// connection) plus HTTP /healthz and /stats probes. See docs/protocol.md
// for the wire protocol, cmd/psid for the standalone binary, and
// ARCHITECTURE.md for where the layer sits in the stack.
type Server = service.Server

// ServerOptions tunes a Server: the Collection coalescing knobs
// (MaxBatch, FlushInterval), the request line-length cap,
// DisableSnapshot to fall back to locked reads, and the WAL knobs
// (WALDir, WALFsync, WALSnapshotInterval — see NewDurableServer). The
// zero value is usable and, unlike a bare Collection, defaults to a 2ms
// background flush so acknowledged writes never stay invisible.
type ServerOptions = service.Options

// ServerStats is the STATS/GET-/stats payload: collection counters plus
// per-command serving latency quantiles.
type ServerStats = service.StatsPayload

// NewServer wraps idx (which must start empty) in a psid Server. The
// Server takes ownership of idx; bind it with Start, stop it with
// Shutdown. When idx can replicate itself (every psi constructor and
// NewSharded qualifies) the server defaults to epoch-pinned snapshot
// reads — NEARBY/WITHIN/GET never wait behind a flush — at the cost of a
// second index copy; opt out with ServerOptions.DisableSnapshot. The
// recommended serving stack wraps a Sharded index:
//
//	s := psi.NewServer(psi.NewSharded(psi.NewSPaCH, 2, u, 0), psi.ServerOptions{})
//	s.Start(":7501", ":7502")
func NewServer(idx Index, opts ServerOptions) *Server { return service.New(idx, opts) }

// NewDurableServer is NewServer plus crash durability: with
// opts.WALDir set it recovers the collection from the directory's
// write-ahead log (snapshot + committed-window replay, truncating a
// torn tail after a crash), journals every committed flush window from
// then on, and snapshots periodically to truncate the log. Under the
// WALFsyncAlways policy, SET/DEL acknowledgements wait for the journal
// fsync — "ok" means on disk — and a failed WAL turns the server
// fail-stop (writes error with code "unavailable", Fatal() fires).
// docs/durability.md has the on-disk format and the per-policy
// guarantee; cmd/psid exposes the knobs as -wal, -fsync and
// -snapshot-interval. It returns an error when recovery fails (a
// corrupt snapshot, an unreadable directory) rather than serving
// silently empty.
func NewDurableServer(idx Index, opts ServerOptions) (*Server, error) {
	return service.NewDurable(idx, opts)
}

// WALFsyncPolicy selects when journaled flush windows are forced to
// stable storage (ServerOptions.WALFsync).
type WALFsyncPolicy = wal.FsyncPolicy

// WAL fsync policies, in decreasing strength: Always syncs inside every
// committed window (acknowledged == on disk, the only policy that
// survives power loss), Interval syncs on a timer
// (ServerOptions.WALFsyncInterval — at most one interval lost to a host
// crash), Never leaves syncing to the kernel (survives process crashes
// only). docs/durability.md spells out each guarantee.
const (
	WALFsyncAlways   = wal.FsyncAlways
	WALFsyncInterval = wal.FsyncInterval
	WALFsyncNever    = wal.FsyncNever
)

// ParseWALFsync parses a psid -fsync flag value — "always", "never", or
// a sync cadence like "100ms" (selecting WALFsyncInterval) — into the
// policy and interval for ServerOptions.
func ParseWALFsync(s string) (WALFsyncPolicy, time.Duration, error) {
	return wal.ParseFsync(s)
}

// Metrics is a process-wide observability registry (internal/obs): a
// zero-allocation metric surface — atomic counters, gauges, power-of-two
// latency histograms, a flush-span trace ring — that every layer records
// into when handed one via its Options.Obs field (ShardedOptions,
// StoreOptions, CollectionOptions, ServerOptions). A Server exposes its
// registry as Prometheus text on /metrics; see docs/observability.md for
// the metric catalog.
type Metrics = obs.Registry

// MetricsLabel is one key="value" label on a registered metric series.
type MetricsLabel = obs.Label

// NewMetrics builds an empty registry. Hand the same registry to every
// layer of one serving stack (and at most one stack per registry — series
// names would collide otherwise).
func NewMetrics() *Metrics { return obs.New() }

// ServiceClient is a minimal psid protocol client: one connection, one
// request in flight, concurrency-safe. Open one per serving goroutine.
type ServiceClient = service.Client

// ServiceHit is one resolved query result from a ServiceClient.
type ServiceHit = service.Hit

// DialService connects a ServiceClient to a psid server.
func DialService(addr string) (*ServiceClient, error) { return service.Dial(addr) }

// Workload re-exports: the paper's synthetic distributions and query
// generators, for examples and downstream benchmarking.

// Dist names a point distribution ("uniform", "sweepline", "varden",
// "cosmo", "osm").
type Dist = workload.Dist

// Distributions available to Generate.
const (
	Uniform   = workload.Uniform
	Sweepline = workload.Sweepline
	Varden    = workload.Varden
	Cosmo     = workload.Cosmo
	OSM       = workload.OSM
)

// Generate produces n points of the given distribution inside
// [0, side]^dims, deterministically in seed.
func Generate(d Dist, n, dims int, side int64, seed int64) []Point {
	return workload.Generate(d, n, dims, side, seed)
}

// RangeQueries generates query boxes covering the given fraction of the
// universe volume.
func RangeQueries(nq, dims int, side int64, frac float64, seed int64) []Box {
	return workload.RangeQueries(nq, dims, side, frac, seed)
}
